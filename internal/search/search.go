package search

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hotg/internal/concolic"
	"hotg/internal/fol"
	"hotg/internal/mini"
	"hotg/internal/obs"
	"hotg/internal/smt"
	"hotg/internal/sym"
)

// Options configures a directed search.
type Options struct {
	// MaxRuns bounds the number of program executions (default 100).
	MaxRuns int
	// Seeds are the initial inputs; at least one is required.
	Seeds [][]int64
	// Bounds restricts each flat input's domain, aligned with the program
	// shape (nil entries or a nil slice mean the solver default domain).
	Bounds []smt.Bound
	// MaxMultiStep bounds the intermediate tests per target (default 3;
	// the paper bounds k by the number of program inputs).
	MaxMultiStep int
	// StopAtFirstBug ends the search as soon as any error site is reached.
	StopAtFirstBug bool
	// Refute enables the invalidity prover, which distinguishes provably
	// invalid targets from unknown ones. The distinction is reporting-only
	// (neither produces a test), so it is off by default for speed.
	Refute bool
	// ProverNodes caps the validity-proof search per target (default 4000).
	ProverNodes int
	// Workers sets how many goroutines execute tests and discharge
	// per-target proof obligations (default GOMAXPROCS). Workers=1 runs the
	// classic sequential algorithm on the calling goroutine. Any setting
	// produces identical results: the coordinator batches only independent
	// work and merges worker results in enqueue order, so the explored
	// trajectory — runs, tests, coverage, bugs, samples, prover verdicts —
	// is bit-for-bit the same at every worker count. Only the timing and
	// per-worker load figures in Stats depend on scheduling.
	Workers int
	// Obs, when non-nil, enables observability: metrics flow into its
	// registry from every layer (search, prover, solver, executor), and, when
	// Obs.Trace is also set, one structured event is emitted per pipeline
	// event. Events are emitted only by the coordinator in canonical apply
	// order, so the event stream — minus timestamps, durations, and worker
	// IDs — is identical at every worker count. A nil Obs costs one pointer
	// check per instrumentation site.
	Obs *obs.Obs
}

// item is one unit of search work: an input to execute, with the trace
// prediction used for divergence checking and the generational bound.
type item struct {
	input    []int64
	expected []mini.BranchEvent
	bound    int
	pending  *pendingTarget
	// noExpand marks sample-collection (intermediate) runs, which are not
	// expanded into new targets.
	noExpand bool
}

// pendingTarget is a multi-step continuation: a proved strategy whose
// resolution is blocked on unobserved samples.
type pendingTarget struct {
	strategy *fol.Strategy
	alt      sym.Expr
	expected []mini.BranchEvent
	fallback []int64
	bound    int
	retries  int
	hot      bool
}

// Run performs the directed search and returns its statistics.
func Run(eng *concolic.Engine, opts Options) *Stats {
	if opts.MaxRuns <= 0 {
		opts.MaxRuns = 100
	}
	if opts.MaxMultiStep <= 0 {
		opts.MaxMultiStep = 3
	}
	if opts.ProverNodes <= 0 {
		opts.ProverNodes = 4000
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if len(opts.Seeds) == 0 {
		panic("search: at least one seed input is required")
	}
	s := &searcher{eng: eng, opts: opts, stats: newStats(eng.Mode.String(), eng.Prog.NumBranches)}
	s.cache = newProofCache()
	s.obs = opts.Obs
	if s.obs.Enabled() && eng.Obs == nil {
		eng.Obs = s.obs
	}
	s.stats.Workers = opts.Workers
	s.stats.ProofsPerWorker = make([]int64, opts.Workers)
	s.varBounds = make(map[int]smt.Bound)
	for i, v := range eng.InputVars {
		if i < len(opts.Bounds) {
			b := opts.Bounds[i]
			if b.HasLo || b.HasHi {
				s.varBounds[v.ID] = b
			}
		}
	}
	for _, seed := range opts.Seeds {
		s.hot = append(s.hot, item{input: seed})
	}
	if s.tracing() {
		// The resolved worker count is deliberately absent: like worker IDs
		// and timestamps it is scheduling configuration, and the canonical
		// stream must be identical at every worker count. It is reported via
		// the search.workers gauge and Stats instead.
		s.emit(obs.Event{Kind: "run_start", Worker: -1,
			Num: map[string]int64{
				"max_runs": int64(opts.MaxRuns),
				"seeds":    int64(len(opts.Seeds)), "branches": int64(eng.Prog.NumBranches),
			},
			Str: map[string]string{"mode": eng.Mode.String()}})
	}
	start := time.Now()
	s.run()
	s.stats.WallTime = time.Since(start)
	s.stats.SolveTime = time.Duration(s.solveNanos)
	s.stats.SamplesLearned = eng.Samples.Len()
	s.flushObs()
	return s.stats
}

// tracing reports whether trace events should be built and emitted.
func (s *searcher) tracing() bool { return s.obs.Tracing() }

// emit forwards one coordinator-ordered event to the tracer.
func (s *searcher) emit(ev obs.Event) { s.obs.Emit(ev) }

// taskEvent emits a worker-task event whose timestamp is the recorded task
// start (trace-relative) rather than the emission time, so the worker-pool
// timeline renders faithfully in Chrome traces. start/dur/worker are
// scheduling facts, excluded from the canonical stream.
func (s *searcher) taskEvent(kind string, worker int, start time.Time, dur time.Duration, num map[string]int64, str map[string]string) {
	ev := obs.Event{Kind: kind, Worker: worker, Dur: int64(dur), Num: num, Str: str}
	if !start.IsZero() {
		ev.TS = int64(start.Sub(s.obs.Trace.Start()))
	}
	s.emit(ev)
}

// flushObs publishes the end-of-search statistics into the metrics registry
// and emits the run_end event. Counters accumulate across searches sharing a
// registry (the experiment harness runs several per experiment).
func (s *searcher) flushObs() {
	o := s.obs
	if !o.Enabled() {
		return
	}
	st := s.stats
	o.Gauge("search.workers").Set(int64(st.Workers))
	o.Gauge("search.samples").Set(int64(st.SamplesLearned))
	o.Counter("search.runs").Add(int64(st.Runs))
	o.Counter("search.tests_generated").Add(int64(st.TestsGenerated))
	o.Counter("search.intermediate_tests").Add(int64(st.IntermediateTests))
	o.Counter("search.divergences").Add(int64(st.Divergences))
	o.Counter("search.bugs").Add(int64(len(st.Bugs)))
	o.Counter("search.multistep_chains").Add(int64(st.MultiStepChains))
	o.Counter("search.prover.calls").Add(int64(st.ProverCalls))
	o.Counter("search.prover.proved").Add(int64(st.ProverProved))
	o.Counter("search.prover.invalid").Add(int64(st.ProverInvalid))
	o.Counter("search.prover.unknown").Add(int64(st.ProverUnknown))
	o.Counter("search.solver.calls").Add(int64(st.SolverCalls))
	o.Counter("search.solver.sat").Add(int64(st.SolverSat))
	o.Counter("search.proof_cache.hits").Add(int64(st.ProofCacheHits))
	o.Counter("search.proof_cache.misses").Add(int64(st.ProofCacheMisses))
	o.Counter("search.wall_ns").Add(int64(st.WallTime))
	o.Counter("search.solve_ns").Add(int64(st.SolveTime))
	if c := s.eng.Summaries; c != nil {
		o.Gauge("concolic.summary.hits").Set(int64(c.Hits))
		o.Gauge("concolic.summary.misses").Set(int64(c.Misses))
		o.Gauge("concolic.summary.fallbacks").Set(int64(c.Fallbacks))
		o.Gauge("concolic.summary.cases").Set(int64(c.Cases()))
	}
	if s.tracing() {
		boolNum := func(b bool) int64 {
			if b {
				return 1
			}
			return 0
		}
		s.emit(obs.Event{Kind: "run_end", Worker: -1,
			Num: map[string]int64{
				"runs": int64(st.Runs), "tests": int64(st.TestsGenerated),
				"covered": int64(st.BranchSidesCovered()), "cov_total": int64(st.BranchSidesTotal()),
				"paths": int64(st.Paths()), "bugs": int64(len(st.Bugs)),
				"divergences": int64(st.Divergences), "samples": int64(st.SamplesLearned),
				"exhausted": boolNum(st.Exhausted), "incomplete": boolNum(st.Incomplete),
			}})
	}
}

// searcher is the search coordinator. All queue, dedup-map, statistics, and
// shared-sample-store mutation happens on the coordinating goroutine; workers
// only execute tests against sample-store overlays and discharge proof
// obligations against the frozen shared store (see processBatch and the
// solveTargets functions for why the merge order makes every worker count
// produce identical results).
type searcher struct {
	eng   *concolic.Engine
	opts  Options
	stats *Stats
	// Two-tier work queue (SAGE-style generational scoring): children of
	// runs that covered new branch sides are processed before the rest, so
	// productive chains — extend a chunk, invert its hash, classify the next
	// chunk — stay hot instead of drowning in breadth-first noise.
	hot, cold []item
	varBounds map[int]smt.Bound
	tried     map[string]bool
	targeted  map[string]bool
	// cache memoizes per-target proof and satisfiability results; see
	// cache.go. Only the coordinator touches it.
	cache *proofCache
	// solveNanos aggregates the duration of individual prover/solver tasks
	// across workers (atomic).
	solveNanos int64
	// obs is the observability sink (nil = disabled). Metrics may be updated
	// from worker goroutines (atomics); trace events are emitted only from
	// the coordinator, in canonical apply order.
	obs *obs.Obs
}

// inputKey is the dedup key of an input vector: a length-prefixed varint
// encoding, one short allocation instead of fmt-formatting every element.
func inputKey(in []int64) string {
	var tmp [binary.MaxVarintLen64]byte
	buf := make([]byte, 0, 2*len(in)+1)
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(in)))]...)
	for _, v := range in {
		buf = append(buf, tmp[:binary.PutVarint(tmp[:], v)]...)
	}
	return string(buf)
}

// batchSource says where nextBatch got its work from.
type batchSource int

const (
	srcEmpty   batchSource = iota // both queues drained
	srcPending                    // a multi-step continuation to resume
	srcRun                        // inputs to execute
)

// nextBatch takes the next unit(s) of work off the queues, replicating the
// sequential pop order exactly:
//
//   - a pending continuation at the hot head is returned alone — it must
//     re-resolve against the samples exactly as they stand now;
//   - consecutive plain items at the hot head form a batch (bounded by the
//     worker count and the remaining run budget). Their executions are
//     mutually independent — concrete behavior never depends on the sample
//     store — so running them concurrently and merging in order is exact;
//   - a cold item is returned alone: its expansion may enqueue hot children
//     that sequentially precede the rest of the cold queue.
//
// Inputs already tried are dropped during selection, exactly when the
// sequential loop would have popped and skipped them.
func (s *searcher) nextBatch() ([]item, batchSource) {
	if len(s.hot) > 0 {
		if s.hot[0].pending != nil {
			it := s.hot[0]
			s.hot = s.hot[1:]
			return []item{it}, srcPending
		}
		limit := s.opts.MaxRuns - s.stats.Runs
		if limit > s.opts.Workers {
			limit = s.opts.Workers
		}
		var batch []item
		var batchKeys map[string]bool
		for len(batch) < limit && len(s.hot) > 0 && s.hot[0].pending == nil {
			it := s.hot[0]
			s.hot = s.hot[1:]
			key := inputKey(it.input)
			if s.tried[key] || batchKeys[key] {
				continue
			}
			if batchKeys == nil {
				batchKeys = make(map[string]bool, limit)
			}
			batchKeys[key] = true
			batch = append(batch, it)
		}
		return batch, srcRun
	}
	if len(s.cold) > 0 {
		it := s.cold[0]
		s.cold = s.cold[1:]
		if s.tried[inputKey(it.input)] {
			return nil, srcRun
		}
		return []item{it}, srcRun
	}
	return nil, srcEmpty
}

func (s *searcher) run() {
	s.tried = map[string]bool{}
	s.targeted = map[string]bool{}
	for s.stats.Runs < s.opts.MaxRuns {
		batch, src := s.nextBatch()
		switch src {
		case srcEmpty:
			s.stats.Exhausted = true
			return
		case srcPending:
			s.resumePending(batch[0].pending)
			continue
		}
		if len(batch) == 0 {
			continue // only duplicates were queued
		}
		if s.processBatch(batch) {
			return
		}
	}
}

// processBatch executes the batch (concurrently when it has more than one
// item), then merges results in batch order: each item's new samples land in
// the shared store, its run is recorded, and its expansion runs — exactly the
// per-item sequence of the sequential loop. The merge order matters: sample
// insertion order steers the prover's choice ordering, so it must not depend
// on worker completion order. It returns true when the search should stop.
func (s *searcher) processBatch(batch []item) bool {
	type runResult struct {
		ex      *concolic.Execution
		overlay *sym.SampleStore
		worker  int
		start   time.Time
		dur     time.Duration
	}
	tracing := s.tracing()
	// prevLen tracks the shared store size so per-item "samples learned"
	// counts come from merge-order deltas — deterministic at any worker count
	// (the per-overlay NewSamples counts are not: two overlays of one batch
	// may both record a sample only one of them gets to merge first).
	var prevLen int
	if tracing {
		prevLen = s.eng.Samples.Len()
	}
	results := make([]runResult, len(batch))
	if len(batch) == 1 {
		var t0 time.Time
		if tracing {
			t0 = time.Now()
		}
		results[0].ex = s.eng.Run(batch[0].input)
		if tracing {
			results[0].start, results[0].dur = t0, time.Since(t0)
		}
	} else {
		s.parallelDo(len(batch), func(i, worker int) {
			var t0 time.Time
			if tracing {
				t0 = time.Now()
			}
			overlay := sym.NewOverlay(s.eng.Samples)
			ex := s.eng.Clone(overlay).Run(batch[i].input)
			results[i] = runResult{ex: ex, overlay: overlay, worker: worker, start: t0}
			if tracing {
				results[i].dur = time.Since(t0)
			}
		})
	}
	for i, it := range batch {
		r := results[i]
		if r.overlay != nil {
			s.eng.Samples.MergeLocal(r.overlay)
		}
		s.tried[inputKey(it.input)] = true
		bugsBefore := len(s.stats.Bugs)
		gained := s.stats.recordRun(r.ex.Result, it.input)
		if r.ex.Incomplete {
			s.stats.Incomplete = true
		}
		div := it.expected != nil && diverged(r.ex.Result.Branches, it.expected)
		if div {
			s.stats.Divergences++
		}
		if tracing {
			intermediate := int64(0)
			if it.noExpand {
				intermediate = 1
			}
			s.taskEvent("exec_task", r.worker, r.start, r.dur,
				map[string]int64{
					"run": int64(s.stats.Runs), "gained": int64(gained),
					"path_len": int64(len(r.ex.PC)), "branches": int64(len(r.ex.Result.Branches)),
					"intermediate": intermediate,
				},
				map[string]string{"input": fmt.Sprint(it.input)})
			if cur := s.eng.Samples.Len(); cur > prevLen {
				s.emit(obs.Event{Kind: "samples_learned", Worker: -1,
					Num: map[string]int64{"count": int64(cur - prevLen), "total": int64(cur), "run": int64(s.stats.Runs)}})
				prevLen = cur
			}
			if div {
				s.emit(obs.Event{Kind: "divergence", Worker: -1,
					Num: map[string]int64{"run": int64(s.stats.Runs), "expected_len": int64(len(it.expected)), "actual_len": int64(len(r.ex.Result.Branches))}})
			}
			for _, b := range s.stats.Bugs[bugsBefore:] {
				s.emit(obs.Event{Kind: "bug_found", Worker: -1,
					Num: map[string]int64{"run": int64(b.Run), "site": int64(b.Site)},
					Str: map[string]string{"kind": b.Kind.String(), "msg": b.Msg, "input": fmt.Sprint(b.Input)}})
			}
		}
		if s.opts.StopAtFirstBug && len(s.stats.ErrorSitesFound()) > 0 {
			return true
		}
		if !it.noExpand {
			s.expand(r.ex, it.bound, gained > 0)
		}
	}
	return false
}

// parallelDo runs fn(i, worker) for every i in [0, n), fanning the indices
// out over min(Workers, n) goroutines. With one worker (or one task) it runs
// inline on the coordinator. fn implementations write only to their own index
// i and their own worker slot.
func (s *searcher) parallelDo(n int, fn func(i, worker int)) {
	workers := s.opts.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i, 0)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i, w)
			}
		}(w)
	}
	wg.Wait()
}

// diverged reports whether the actual trace fails to realize the prediction.
func diverged(actual, expected []mini.BranchEvent) bool {
	if len(actual) < len(expected) {
		return true
	}
	for i := range expected {
		if actual[i] != expected[i] {
			return true
		}
	}
	return false
}

// target is one proof obligation of an expansion: ALT(pc_k) with its trace
// prediction. The solve phase fills the result fields.
type target struct {
	alt      sym.Expr
	expected []mini.BranchEvent
	k        int
	cacheKey string
	// Higher-order result: core strategy (no fallback defs) and outcome.
	strategy *fol.Strategy
	outcome  fol.Outcome
	// Satisfiability result (non-higher-order modes).
	status smt.Status
	model  *smt.Model
	// Scheduling facts for the trace (which worker discharged the proof,
	// when, how long); zero for cache hits. Excluded from canonical streams.
	worker int
	start  time.Time
	dur    time.Duration
}

// expand generates new work items by negating each negatable constraint of
// the execution from the generational bound onward. Each target is sliced to
// its related constraints and deduplicated before any solver work; the
// surviving targets' proof obligations all read the same frozen sample store,
// so they are discharged concurrently and their results applied in constraint
// order.
func (s *searcher) expand(ex *concolic.Execution, bound int, hot bool) {
	prefix := make([]sym.Expr, 0, len(ex.PC))
	for i := 0; i < bound && i < len(ex.PC); i++ {
		prefix = append(prefix, ex.PC[i].Expr)
	}
	var targets []*target
	for k := bound; k < len(ex.PC); k++ {
		c := ex.PC[k]
		if c.IsConcretization {
			prefix = append(prefix, c.Expr)
			continue
		}
		negated := sym.NotExpr(c.Expr)
		expected := ex.ExpectedTrace(k)
		key := targetKey(expected, negated)
		if !s.targeted[key] {
			s.targeted[key] = true
			t := &target{alt: sliceAlt(prefix, negated), expected: expected, k: k, worker: -1}
			targets = append(targets, t)
			if s.tracing() {
				s.emit(obs.Event{Kind: "target", Worker: -1,
					Num: map[string]int64{
						"k": int64(k), "conjuncts": int64(len(sym.Conjuncts(t.alt))),
						"formula_size": int64(len(t.alt.Key())),
					}})
			}
		}
		prefix = append(prefix, c.Expr)
	}
	if len(targets) == 0 {
		return
	}
	if s.eng.Mode == concolic.ModeHigherOrder {
		s.solveTargetsHigherOrder(targets, ex.Input, hot)
	} else {
		s.solveTargetsSat(targets, ex.Input, hot)
	}
}

// solveTargetsHigherOrder discharges the expansion's validity proofs:
// cache-missing targets fan out over the workers (ProveCore only reads the
// sample store and allocates from the synchronized pool), then results are
// applied — and the cache is filled — in constraint order on the coordinator.
// Computing the cache key also memoizes the formula's canonical string, so
// workers never write the lazy key fields of shared subterms.
func (s *searcher) solveTargetsHigherOrder(targets []*target, fallback []int64, hot bool) {
	version := s.eng.Samples.Len()
	var todo []*target
	for _, t := range targets {
		t.cacheKey = proveKey(t.alt, version)
		if _, ok := s.cache.prove[t.cacheKey]; !ok {
			todo = append(todo, t)
		}
	}
	s.parallelDo(len(todo), func(i, worker int) {
		t := todo[i]
		t0 := time.Now()
		t.strategy, t.outcome = fol.ProveCore(t.alt, s.eng.Samples, fol.Options{
			Pool:      s.eng.Pool,
			VarBounds: s.varBounds,
			NoRefute:  !s.opts.Refute,
			MaxNodes:  s.opts.ProverNodes,
			Obs:       s.obs,
		})
		t.worker, t.start, t.dur = worker, t0, time.Since(t0)
		atomic.AddInt64(&s.solveNanos, int64(t.dur))
		s.stats.ProofsPerWorker[worker]++
	})
	fb := make(map[int]int64, len(fallback))
	for i, v := range s.eng.InputVars {
		fb[v.ID] = fallback[i]
	}
	for _, t := range targets {
		// Cache accounting happens here, in constraint order, so the hit and
		// miss counts are identical at every worker count. (Two targets of
		// one fan-out sharing a formula are proved twice concurrently; the
		// second is still accounted as a hit, its duplicate result dropped.)
		cached := "miss"
		if e, ok := s.cache.prove[t.cacheKey]; ok {
			cached = "hit"
			s.stats.ProofCacheHits++
			t.strategy, t.outcome = e.strategy, e.outcome
		} else {
			s.stats.ProofCacheMisses++
			s.cache.prove[t.cacheKey] = proveEntry{strategy: t.strategy, outcome: t.outcome}
		}
		s.stats.ProverCalls++
		if s.tracing() {
			s.emit(obs.Event{Kind: "cache", Worker: -1,
				Str: map[string]string{"op": "prove", "result": cached}})
			num := map[string]int64{"k": int64(t.k), "formula_size": int64(len(t.alt.Key()))}
			if t.strategy != nil {
				num["defs"] = int64(len(t.strategy.Defs))
				num["steps"] = int64(len(t.strategy.Proof))
			}
			s.taskEvent("prove", t.worker, t.start, t.dur, num,
				map[string]string{"verdict": t.outcome.String(), "cache": cached})
		}
		switch t.outcome {
		case fol.OutcomeInvalid:
			s.stats.ProverInvalid++
			continue
		case fol.OutcomeUnknown:
			s.stats.ProverUnknown++
			continue
		}
		s.stats.ProverProved++
		pt := &pendingTarget{
			// The cached strategy is shared; FillFallback copies it while
			// fixing this target's unconstrained variables at the parent
			// input's values.
			strategy: fol.FillFallback(t.strategy, t.alt, fb),
			alt:      t.alt,
			expected: t.expected,
			fallback: fallback,
			bound:    t.k + 1,
			retries:  s.opts.MaxMultiStep,
			hot:      hot,
		}
		s.resolveAndEnqueue(pt, true)
	}
}

// solveTargetsSat is classic test generation: satisfiability checks of
// ALT(pc), fanned out and cached like the validity proofs (solver results do
// not depend on the sample store, so the cache key is the formula alone).
func (s *searcher) solveTargetsSat(targets []*target, fallback []int64, hot bool) {
	var todo []*target
	for _, t := range targets {
		t.cacheKey = t.alt.Key()
		if _, ok := s.cache.solve[t.cacheKey]; !ok {
			todo = append(todo, t)
		}
	}
	s.parallelDo(len(todo), func(i, worker int) {
		t := todo[i]
		t0 := time.Now()
		t.status, t.model = smt.Solve(t.alt, smt.Options{Pool: s.eng.Pool, VarBounds: s.varBounds, Obs: s.obs})
		t.worker, t.start, t.dur = worker, t0, time.Since(t0)
		atomic.AddInt64(&s.solveNanos, int64(t.dur))
		s.stats.ProofsPerWorker[worker]++
	})
	for _, t := range targets {
		cached := "miss"
		if e, ok := s.cache.solve[t.cacheKey]; ok {
			cached = "hit"
			s.stats.ProofCacheHits++
			t.status, t.model = e.status, e.model
		} else {
			s.stats.ProofCacheMisses++
			s.cache.solve[t.cacheKey] = solveEntry{status: t.status, model: t.model}
		}
		s.stats.SolverCalls++
		if s.tracing() {
			s.emit(obs.Event{Kind: "cache", Worker: -1,
				Str: map[string]string{"op": "solve", "result": cached}})
			s.taskEvent("solve", t.worker, t.start, t.dur,
				map[string]int64{"k": int64(t.k), "formula_size": int64(len(t.alt.Key()))},
				map[string]string{"status": t.status.String(), "cache": cached})
		}
		if t.status != smt.StatusSat {
			continue
		}
		s.stats.SolverSat++
		input := make([]int64, len(fallback))
		copy(input, fallback)
		for i, v := range s.eng.InputVars {
			if val, ok := t.model.Vars[v.ID]; ok {
				input[i] = val
			}
		}
		s.enqueueTest(input, t.expected, t.k+1, hot)
	}
}

// resolveAndEnqueue tries to turn a proved strategy into a concrete test; on
// missing samples it schedules an intermediate test plus a continuation.
// first marks the initial attempt (for multi-step accounting).
func (s *searcher) resolveAndEnqueue(pt *pendingTarget, first bool) bool {
	res := pt.strategy.Resolve(s.eng.Samples)
	if res.Complete {
		input := s.inputFrom(res.Values, pt.fallback)
		if !s.inBounds(input) {
			return false
		}
		// Final sanity check against the samples: the strategy is a proof,
		// so this must hold; it guards the implementation.
		values := map[int]int64{}
		for i, v := range s.eng.InputVars {
			values[v.ID] = input[i]
		}
		if ok, probes := fol.Holds(pt.alt, values, s.eng.Samples); len(probes) == 0 && !ok {
			return false
		}
		s.enqueueTest(input, pt.expected, pt.bound, pt.hot)
		return true
	}
	if pt.retries <= 0 {
		return false
	}
	// Multi-step test generation (Example 7): run an intermediate test with
	// the resolved values filled in, hoping the program samples the probes.
	if first {
		s.stats.MultiStepChains++
	}
	pt.retries--
	intermediate := s.inputFrom(res.Values, pt.fallback)
	if !s.inBounds(intermediate) {
		return false
	}
	s.stats.IntermediateTests++
	if s.tracing() {
		s.emit(obs.Event{Kind: "multistep", Worker: -1,
			Num: map[string]int64{"retries_left": int64(pt.retries), "bound": int64(pt.bound), "probes": int64(len(res.Probes))},
			Str: map[string]string{"intermediate": fmt.Sprint(intermediate)}})
	}
	// Intermediate sample-collection runs and their continuations always go
	// hot: they complete a proof already in hand.
	s.hot = append(s.hot, item{input: intermediate, noExpand: true})
	s.hot = append(s.hot, item{pending: pt})
	return true
}

// resumePending re-resolves a blocked strategy after intermediate tests.
func (s *searcher) resumePending(pt *pendingTarget) bool {
	return s.resolveAndEnqueue(pt, false)
}

func (s *searcher) inputFrom(values map[int]int64, fallback []int64) []int64 {
	input := make([]int64, len(fallback))
	copy(input, fallback)
	for i, v := range s.eng.InputVars {
		if val, ok := values[v.ID]; ok {
			input[i] = val
		}
	}
	return input
}

func (s *searcher) inBounds(input []int64) bool {
	for i, v := range s.eng.InputVars {
		b, ok := s.varBounds[v.ID]
		if !ok {
			continue
		}
		if b.HasLo && input[i] < b.Lo {
			return false
		}
		if b.HasHi && input[i] > b.Hi {
			return false
		}
	}
	return true
}

func (s *searcher) enqueueTest(input []int64, expected []mini.BranchEvent, bound int, hot bool) {
	if s.tried[inputKey(input)] {
		return
	}
	s.stats.TestsGenerated++
	if s.tracing() {
		queue := "cold"
		if hot {
			queue = "hot"
		}
		s.emit(obs.Event{Kind: "test_generated", Worker: -1,
			Num: map[string]int64{"bound": int64(bound)},
			Str: map[string]string{"input": fmt.Sprint(input), "queue": queue}})
	}
	it := item{input: input, expected: expected, bound: bound}
	if hot {
		s.hot = append(s.hot, it)
	} else {
		s.cold = append(s.cold, it)
	}
}
