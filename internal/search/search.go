package search

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hotg/internal/concolic"
	"hotg/internal/fol"
	"hotg/internal/mini"
	"hotg/internal/obs"
	"hotg/internal/smt"
	"hotg/internal/sym"
)

// Options configures a directed search.
type Options struct {
	// MaxRuns bounds the number of program executions (default 100).
	MaxRuns int
	// Seeds are the initial inputs; at least one is required.
	Seeds [][]int64
	// Bounds restricts each flat input's domain, aligned with the program
	// shape (nil entries or a nil slice mean the solver default domain).
	Bounds []smt.Bound
	// MaxMultiStep bounds the intermediate tests per target (default 3;
	// the paper bounds k by the number of program inputs).
	MaxMultiStep int
	// StopAtFirstBug ends the search as soon as any error site is reached.
	StopAtFirstBug bool
	// Refute enables the invalidity prover, which distinguishes provably
	// invalid targets from unknown ones. The distinction is reporting-only
	// (neither produces a test), so it is off by default for speed.
	Refute bool
	// ProverNodes caps the validity-proof search per target (default 4000).
	ProverNodes int
	// Workers sets how many goroutines execute tests and discharge
	// per-target proof obligations (default GOMAXPROCS). Workers=1 runs the
	// classic sequential algorithm on the calling goroutine. Any setting
	// produces identical results: the coordinator batches only independent
	// work and merges worker results in enqueue order, so the explored
	// trajectory — runs, tests, coverage, bugs, samples, prover verdicts —
	// is bit-for-bit the same at every worker count. Only the timing and
	// per-worker load figures in Stats depend on scheduling.
	Workers int
	// Obs, when non-nil, enables observability: metrics flow into its
	// registry from every layer (search, prover, solver, executor), and, when
	// Obs.Trace is also set, one structured event is emitted per pipeline
	// event. Events are emitted only by the coordinator in canonical apply
	// order, so the event stream — minus timestamps, durations, and worker
	// IDs — is identical at every worker count. A nil Obs costs one pointer
	// check per instrumentation site.
	Obs *obs.Obs
	// Budget sets wall-clock ceilings for proofs, targets, and the whole
	// search, and enables graceful degradation down the precision ladder. The
	// zero value means unlimited with no degradation — bit-identical to an
	// unbudgeted search at any worker count. See the Budget type and
	// DESIGN.md §8.
	Budget Budget
	// Ctx, when non-nil, cancels the search cooperatively: the coordinator
	// stops between work units, workers stop picking up tasks, in-flight
	// executions and proofs return early at their next poll point, and Run
	// returns partial (well-formed) Stats with Budget.Cancelled or
	// Budget.TimedOut set.
	Ctx context.Context
	// Checkpoint, when configured (Every > 0 and Sink non-nil), periodically
	// snapshots the full coordinator state — sample store, proof cache, work
	// queues, dedup sets, statistics — at work-loop boundaries. Restoring
	// any snapshot via Restore continues the search bit-identically to the
	// uninterrupted run, at any worker count. See DESIGN.md §9.
	Checkpoint CheckpointOptions
	// Restore, when non-nil, resumes the search from a snapshot instead of
	// the Seeds. The engine must be fresh (empty sample store) and built for
	// the same program and mode; validate with Snapshot.Validate first — Run
	// panics on a snapshot it cannot restore. For a bit-identical
	// continuation the session must use the same MaxRuns, Bounds, Budget,
	// Refute, and ProverNodes as the interrupted one (Workers may differ).
	Restore *Snapshot
	// OnRun, when non-nil, is called by the coordinator for every applied
	// execution, in canonical apply order — the stream the campaign corpus
	// is built from. The callback runs synchronously on the coordinator;
	// keep it cheap.
	OnRun func(RunRecord)
	// Dispatch, when non-nil, routes the search's compute fan-outs —
	// execution batches, validity proofs, satisfiability checks — through an
	// external dispatcher (the fleet coordinator) instead of the local worker
	// pool. The canonical trajectory is unchanged: batching, merge order, and
	// every piece of coordinator state stay exactly as in-process, so
	// Stats.Canonical is bit-identical at any fleet size. A dispatcher error
	// stops the search with Stats.DispatchError set. See DESIGN.md §13.
	Dispatch Dispatcher
	// NoIncrementalSMT disables solver sessions everywhere in the pipeline:
	// the prover falls back to one-shot smt.Solve calls and the
	// satisfiability path drops its per-worker sessions. Results are
	// bit-identical either way (the equivalence gate in the tests depends on
	// it); the flag exists for ablations and for isolating solver regressions.
	NoIncrementalSMT bool
	// CacheCap, when positive, bounds each proof-cache map (validity proofs
	// and satisfiability results) to CacheCap entries with LRU eviction;
	// zero keeps today's unbounded growth. Eviction may cost wall clock (an
	// evicted obligation is re-proved on next occurrence) but never
	// determinism: the cache lives on the coordinator and is touched in
	// canonical constraint order, and re-proving is a pure function of
	// formula + samples, so canonical stats stay bit-identical to an
	// uncapped run at any worker count. Long-running servers set this to
	// bound per-session memory (DESIGN.md §14).
	CacheCap int
}

// item is one unit of search work: an input to execute, with the trace
// prediction used for divergence checking and the generational bound.
type item struct {
	input    []int64
	expected []mini.BranchEvent
	bound    int
	pending  *pendingTarget
	// funcs are the function-valued inputs the test runs under, aligned with
	// the program's FuncShape (nil, or nil entries, mean the default
	// function). Seeds run with nil funcs; generated tests inherit their
	// parent execution's funcs unless the callback synthesis invented new
	// ones.
	funcs []*mini.FuncValue
	// rung records which precision-ladder rung generated the input
	// (RungProof for seeds, which predate any solving); it rides along so
	// run records and checkpoints can report test provenance.
	rung Rung
	// noExpand marks sample-collection (intermediate) runs, which are not
	// expanded into new targets.
	noExpand bool
}

// pendingTarget is a multi-step continuation: a proved strategy whose
// resolution is blocked on unobserved samples.
type pendingTarget struct {
	strategy *fol.Strategy
	alt      sym.Expr
	expected []mini.BranchEvent
	fallback []int64
	funcs    []*mini.FuncValue
	bound    int
	retries  int
	hot      bool
}

// Run performs the directed search and returns its statistics.
func Run(eng *concolic.Engine, opts Options) *Stats {
	if opts.MaxRuns <= 0 {
		opts.MaxRuns = 100
	}
	if opts.MaxMultiStep <= 0 {
		opts.MaxMultiStep = 3
	}
	if opts.ProverNodes <= 0 {
		opts.ProverNodes = 4000
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if len(opts.Seeds) == 0 && opts.Restore == nil {
		panic("search: at least one seed input is required")
	}
	s := &searcher{eng: eng, opts: opts, stats: newStats(eng.Mode.String(), eng.Prog.NumBranches)}
	s.cache = newProofCache(opts.CacheCap)
	s.obs = opts.Obs
	s.live.init(s.obs)
	if s.obs.Enabled() && eng.Obs == nil {
		eng.Obs = s.obs
	}
	s.ctx = opts.Ctx
	if b := opts.Budget; b.SearchTimeout > 0 {
		base := s.ctx
		if base == nil {
			base = context.Background()
		}
		ctx, cancel := context.WithTimeout(base, b.SearchTimeout)
		defer cancel()
		s.ctx = ctx
	}
	if s.ctx != nil {
		if dl, ok := s.ctx.Deadline(); ok {
			s.deadline = dl
		}
		// Let in-flight executions notice cancellation too, not just the
		// coordinator between work units. Restored on return: the probe closes
		// over this search's context and must not outlive it on a shared engine.
		if eng.CheckCancel == nil {
			ctx := s.ctx
			eng.CheckCancel = func() bool { return ctx.Err() != nil }
			defer func() { eng.CheckCancel = nil }()
		}
	}
	s.stats.Budget.Configured = opts.Budget.Active() || opts.Ctx != nil
	s.stats.Workers = opts.Workers
	s.stats.ProofsPerWorker = make([]int64, opts.Workers)
	s.varBounds = make(map[int]smt.Bound)
	for i, v := range eng.InputVars {
		if i < len(opts.Bounds) {
			b := opts.Bounds[i]
			if b.HasLo || b.HasHi {
				s.varBounds[v.ID] = b
			}
		}
	}
	if !opts.NoIncrementalSMT {
		// Allocated here, on the coordinator, so workers only ever touch
		// their own slot (satSession's lazy per-slot creation is race-free).
		s.satSessions = make([]*smt.Context, opts.Workers)
	}
	if opts.Restore != nil {
		// Resume: the queues, dedup sets, cache, statistics, and sample
		// store all come from the snapshot; the seeds were consumed by the
		// interrupted session and must not be re-enqueued.
		if err := s.restoreSnapshot(opts.Restore); err != nil {
			panic("search: restoring snapshot: " + err.Error())
		}
		s.stats.Resumed = true
	} else {
		for _, seed := range opts.Seeds {
			s.hot = append(s.hot, item{input: seed})
		}
	}
	if s.tracing() {
		// The resolved worker count is deliberately absent: like worker IDs
		// and timestamps it is scheduling configuration, and the canonical
		// stream must be identical at every worker count. It is reported via
		// the search.workers gauge and Stats instead.
		kind := "run_start"
		num := map[string]int64{
			"max_runs": int64(opts.MaxRuns),
			"seeds":    int64(len(opts.Seeds)), "branches": int64(eng.Prog.NumBranches),
		}
		if opts.Restore != nil {
			// A resumed session opens with "resume" instead of "run_start";
			// both are session-boundary markers, filtered out of
			// cross-session stream comparisons (DESIGN.md §9).
			kind = "resume"
			num["runs"] = int64(s.stats.Runs)
			num["tests"] = int64(s.stats.TestsGenerated)
			num["samples"] = int64(eng.Samples.Len())
			num["frontier"] = int64(len(s.hot) + len(s.cold))
		}
		s.emit(obs.Event{Kind: kind, Worker: -1, Num: num,
			Str: map[string]string{"mode": eng.Mode.String()}})
	}
	start := time.Now()
	s.run()
	s.stats.ProofCacheEvictions = s.cache.evictions
	s.stats.WallTime = time.Since(start)
	s.stats.SolveTime = time.Duration(s.solveNanos)
	s.stats.SamplesLearned = eng.Samples.Len()
	s.flushObs()
	return s.stats
}

// tracing reports whether trace events should be built and emitted.
func (s *searcher) tracing() bool { return s.obs.Tracing() }

// emit forwards one coordinator-ordered event to the tracer.
func (s *searcher) emit(ev obs.Event) { s.obs.Emit(ev) }

// taskEvent emits a worker-task event whose timestamp is the recorded task
// start (trace-relative) rather than the emission time, so the worker-pool
// timeline renders faithfully in Chrome traces. start/dur/worker are
// scheduling facts, excluded from the canonical stream.
func (s *searcher) taskEvent(kind string, worker int, start time.Time, dur time.Duration, num map[string]int64, str map[string]string) {
	ev := obs.Event{Kind: kind, Worker: worker, Dur: int64(dur), Num: num, Str: str}
	if !start.IsZero() {
		ev.TS = int64(start.Sub(s.obs.Trace.Start()))
	}
	s.emit(ev)
}

// flushObs publishes the end-of-search statistics into the metrics registry
// and emits the run_end event. Counters accumulate across searches sharing a
// registry (the experiment harness runs several per experiment).
func (s *searcher) flushObs() {
	o := s.obs
	if !o.Enabled() {
		return
	}
	st := s.stats
	s.publishLive() // final values: post-run /statusz equals the final Stats
	o.Gauge("search.workers").Set(int64(st.Workers))
	o.Gauge("search.samples").Set(int64(st.SamplesLearned))
	o.Counter("search.runs").Add(int64(st.Runs))
	o.Counter("search.tests_generated").Add(int64(st.TestsGenerated))
	o.Counter("search.intermediate_tests").Add(int64(st.IntermediateTests))
	o.Counter("search.divergences").Add(int64(st.Divergences))
	o.Counter("search.bugs").Add(int64(len(st.Bugs)))
	o.Counter("search.multistep_chains").Add(int64(st.MultiStepChains))
	o.Counter("search.callback.targets").Add(int64(st.CallbackTargets))
	o.Counter("search.callback.funcs_synthesized").Add(int64(st.FuncsSynthesized))
	o.Counter("search.prover.calls").Add(int64(st.ProverCalls))
	o.Counter("search.prover.proved").Add(int64(st.ProverProved))
	o.Counter("search.prover.invalid").Add(int64(st.ProverInvalid))
	o.Counter("search.prover.unknown").Add(int64(st.ProverUnknown))
	o.Counter("search.solver.calls").Add(int64(st.SolverCalls))
	o.Counter("search.solver.sat").Add(int64(st.SolverSat))
	o.Counter("search.proof_cache.hits").Add(int64(st.ProofCacheHits))
	o.Counter("search.proof_cache.misses").Add(int64(st.ProofCacheMisses))
	o.Counter("search.proof_cache.evictions").Add(st.ProofCacheEvictions)
	o.Gauge("search.proof_cache.size").Set(int64(s.cache.size()))
	o.Counter("search.wall_ns").Add(int64(st.WallTime))
	o.Counter("search.solve_ns").Add(int64(st.SolveTime))
	if bs := st.Budget; bs.show() {
		o.Counter("search.budget.proof_timeouts").Add(int64(bs.ProofTimeouts))
		o.Counter("search.budget.prover_panics").Add(int64(bs.ProverPanics))
		o.Counter("search.budget.exec_failures").Add(int64(bs.ExecFailures))
		o.Counter("search.budget.degraded_qf").Add(int64(bs.DegradedQF))
		o.Counter("search.budget.degraded_concretize").Add(int64(bs.DegradedConc))
		for r := RungProof; r < NumRungs; r++ {
			o.Counter("search.budget.tests." + r.String()).Add(int64(bs.TestsByRung[r]))
		}
	}
	if c := s.eng.Summaries; c != nil {
		o.Gauge("concolic.summary.hits").Set(int64(c.Hits))
		o.Gauge("concolic.summary.misses").Set(int64(c.Misses))
		o.Gauge("concolic.summary.fallbacks").Set(int64(c.Fallbacks))
		o.Gauge("concolic.summary.cases").Set(int64(c.Cases()))
	}
	if s.tracing() {
		boolNum := func(b bool) int64 {
			if b {
				return 1
			}
			return 0
		}
		num := map[string]int64{
			"runs": int64(st.Runs), "tests": int64(st.TestsGenerated),
			"covered": int64(st.BranchSidesCovered()), "cov_total": int64(st.BranchSidesTotal()),
			"paths": int64(st.Paths()), "bugs": int64(len(st.Bugs)),
			"divergences": int64(st.Divergences), "samples": int64(st.SamplesLearned),
			"exhausted": boolNum(st.Exhausted), "incomplete": boolNum(st.Incomplete),
		}
		if st.Budget.show() {
			num["degraded"] = int64(st.Budget.Degraded())
			num["proof_timeouts"] = int64(st.Budget.ProofTimeouts)
			num["timed_out"] = boolNum(st.Budget.TimedOut)
			num["cancelled"] = boolNum(st.Budget.Cancelled)
		}
		s.emit(obs.Event{Kind: "run_end", Worker: -1, Num: num})
	}
}

// searcher is the search coordinator. All queue, dedup-map, statistics, and
// shared-sample-store mutation happens on the coordinating goroutine; workers
// only execute tests against sample-store overlays and discharge proof
// obligations against the frozen shared store (see processBatch and the
// solveTargets functions for why the merge order makes every worker count
// produce identical results).
type searcher struct {
	eng   *concolic.Engine
	opts  Options
	stats *Stats
	// Two-tier work queue (SAGE-style generational scoring): children of
	// runs that covered new branch sides are processed before the rest, so
	// productive chains — extend a chunk, invert its hash, classify the next
	// chunk — stay hot instead of drowning in breadth-first noise.
	hot, cold []item
	varBounds map[int]smt.Bound
	tried     map[string]bool
	targeted  map[string]bool
	// cache memoizes per-target proof and satisfiability results; see
	// cache.go. Only the coordinator touches it.
	cache *proofCache
	// solveNanos aggregates the duration of individual prover/solver tasks
	// across workers (atomic).
	solveNanos int64
	// obs is the observability sink (nil = disabled). Metrics may be updated
	// from worker goroutines (atomics); trace events are emitted only from
	// the coordinator, in canonical apply order.
	obs *obs.Obs
	// ctx is the search's cancellation context (nil = not cancellable) and
	// deadline its absolute wall-clock cutoff (zero = none). Both are fixed
	// before the first work unit; workers only read them.
	ctx      context.Context
	deadline time.Time
	// lastCkpt is the Runs value at the most recent checkpoint (or restore),
	// driving the checkpoint cadence; ckptFailed latches after a sink error
	// so a broken sink is reported once, not once per cadence.
	lastCkpt   int
	ckptFailed bool
	// dispatchErr latches the first Dispatcher failure; the run loop stops at
	// the next boundary and the session reports partial (well-formed) stats.
	dispatchErr error
	// satSessions holds one exact-mode solver session per worker for the
	// satisfiability path (indexed by worker, created lazily, confined to
	// that worker's goroutine). Nil when Options.NoIncrementalSMT is set.
	satSessions []*smt.Context
	// live publishes in-flight progress gauges for /statusz; see live.go.
	live liveGauges
}

// satSession returns (creating on first use) the given worker's solver
// session, or nil when incremental solving is disabled.
func (s *searcher) satSession(worker int) *smt.Context {
	if s.satSessions == nil {
		return nil
	}
	if s.satSessions[worker] == nil {
		s.satSessions[worker] = smt.NewContext(smt.ContextOptions{
			Options: smt.Options{Pool: s.eng.Pool, VarBounds: s.varBounds, Obs: s.obs},
		})
	}
	return s.satSessions[worker]
}

// canceled reports whether the search context has fired. Safe from workers.
func (s *searcher) canceled() bool { return s.ctx != nil && s.ctx.Err() != nil }

// inputKey is the dedup key of an input vector: a length-prefixed varint
// encoding, one short allocation instead of fmt-formatting every element.
func inputKey(in []int64) string {
	var tmp [binary.MaxVarintLen64]byte
	buf := make([]byte, 0, 2*len(in)+1)
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(in)))]...)
	for _, v := range in {
		buf = append(buf, tmp[:binary.PutVarint(tmp[:], v)]...)
	}
	return string(buf)
}

// runKey is the dedup key of one test: the scalar input vector plus, for
// programs with function-valued parameters, the canonical rendering of every
// function input. Two tests are the same run iff both agree — the same
// scalars under a different synthesized callback explore a different path.
// For programs without function parameters it is exactly inputKey, so
// checkpoints of first-order searches are unchanged.
func (s *searcher) runKey(input []int64, funcs []*mini.FuncValue) string {
	shape := s.eng.FuncShape()
	if len(shape) == 0 {
		return inputKey(input)
	}
	return inputKey(input) + "|" + mini.FuncValuesKey(funcs, shape)
}

// funcsText renders the function inputs in canonical text, one per function
// parameter, for run records and bug reports. Nil for first-order programs.
func (s *searcher) funcsText(funcs []*mini.FuncValue) []string {
	shape := s.eng.FuncShape()
	if len(shape) == 0 {
		return nil
	}
	out := make([]string, len(shape))
	for i, fp := range shape {
		var fv *mini.FuncValue
		if i < len(funcs) {
			fv = funcs[i]
		}
		out[i] = mini.FuncValueString(fv, fp.Arity)
	}
	return out
}

// batchSource says where nextBatch got its work from.
type batchSource int

const (
	srcEmpty   batchSource = iota // both queues drained
	srcPending                    // a multi-step continuation to resume
	srcRun                        // inputs to execute
)

// nextBatch takes the next unit(s) of work off the queues, replicating the
// sequential pop order exactly:
//
//   - a pending continuation at the hot head is returned alone — it must
//     re-resolve against the samples exactly as they stand now;
//   - consecutive plain items at the hot head form a batch (bounded by the
//     worker count and the remaining run budget). Their executions are
//     mutually independent — concrete behavior never depends on the sample
//     store — so running them concurrently and merging in order is exact;
//   - a cold item is returned alone: its expansion may enqueue hot children
//     that sequentially precede the rest of the cold queue.
//
// Inputs already tried are dropped during selection, exactly when the
// sequential loop would have popped and skipped them.
func (s *searcher) nextBatch() ([]item, batchSource) {
	if len(s.hot) > 0 {
		if s.hot[0].pending != nil {
			it := s.hot[0]
			s.hot = s.hot[1:]
			return []item{it}, srcPending
		}
		limit := s.opts.MaxRuns - s.stats.Runs
		if limit > s.opts.Workers {
			limit = s.opts.Workers
		}
		var batch []item
		var batchKeys map[string]bool
		for len(batch) < limit && len(s.hot) > 0 && s.hot[0].pending == nil {
			it := s.hot[0]
			s.hot = s.hot[1:]
			key := s.runKey(it.input, it.funcs)
			if s.tried[key] || batchKeys[key] {
				continue
			}
			if batchKeys == nil {
				batchKeys = make(map[string]bool, limit)
			}
			batchKeys[key] = true
			batch = append(batch, it)
		}
		return batch, srcRun
	}
	if len(s.cold) > 0 {
		it := s.cold[0]
		s.cold = s.cold[1:]
		if s.tried[s.runKey(it.input, it.funcs)] {
			return nil, srcRun
		}
		return []item{it}, srcRun
	}
	return nil, srcEmpty
}

func (s *searcher) run() {
	if s.tried == nil {
		s.tried = map[string]bool{}
	}
	if s.targeted == nil {
		s.targeted = map[string]bool{}
	}
	for s.stats.Runs < s.opts.MaxRuns {
		s.publishLive()
		if s.stopEarly() {
			return
		}
		// Checkpoint after the cancellation check: a cancelled batch drops
		// items nondeterministically (whichever were in flight), so the
		// post-cancel state is not on the canonical trajectory and must
		// never become a resume point.
		s.maybeCheckpoint()
		batch, src := s.nextBatch()
		switch src {
		case srcEmpty:
			s.stats.Exhausted = true
			return
		case srcPending:
			s.resumePending(batch[0].pending)
			continue
		}
		if len(batch) == 0 {
			continue // only duplicates were queued
		}
		if s.processBatch(batch) {
			return
		}
	}
}

// stopEarly checks the search context between work units. On cancellation it
// records the cause — a fired deadline (ours or the caller's) versus an
// explicit cancel — emits the cancel event, and tells the run loop to return
// with whatever partial results stand. Everything already merged stays valid:
// the coordinator only applies completed work, in order.
func (s *searcher) stopEarly() bool {
	if !s.canceled() {
		return false
	}
	cause := "canceled"
	if errors.Is(s.ctx.Err(), context.DeadlineExceeded) {
		cause = "deadline"
		s.stats.Budget.TimedOut = true
	} else {
		s.stats.Budget.Cancelled = true
	}
	if s.tracing() {
		s.emit(obs.Event{Kind: "cancel", Worker: -1,
			Num: map[string]int64{"runs": int64(s.stats.Runs)},
			Str: map[string]string{"cause": cause}})
	}
	return true
}

// processBatch executes the batch (concurrently when it has more than one
// item), then merges results in batch order: each item's new samples land in
// the shared store, its run is recorded, and its expansion runs — exactly the
// per-item sequence of the sequential loop. The merge order matters: sample
// insertion order steers the prover's choice ordering, so it must not depend
// on worker completion order. It returns true when the search should stop.
func (s *searcher) processBatch(batch []item) bool {
	type runResult struct {
		ex       *concolic.Execution
		overlay  *sym.SampleStore
		samples  []sym.Sample // dispatched runs: remotely observed samples
		panicked bool
		worker   int
		start    time.Time
		dur      time.Duration
	}
	// execOne shields the coordinator from executor panics (injected faults or
	// interpreter defects): a panicking run is dropped and accounted instead of
	// taking the whole search down.
	execOne := func(eng *concolic.Engine, input []int64, funcs []*mini.FuncValue) (ex *concolic.Execution, panicked bool) {
		defer func() {
			if rec := recover(); rec != nil {
				ex, panicked = nil, true
			}
		}()
		return eng.RunWith(input, funcs), false
	}
	tracing := s.tracing()
	// prevLen tracks the shared store size so per-item "samples learned"
	// counts come from merge-order deltas — deterministic at any worker count
	// (the per-overlay NewSamples counts are not: two overlays of one batch
	// may both record a sample only one of them gets to merge first).
	var prevLen int
	if tracing {
		prevLen = s.eng.Samples.Len()
	}
	results := make([]runResult, len(batch))
	if d := s.opts.Dispatch; d != nil {
		// Fleet path: the whole batch goes out as one dispatch; replies come
		// back positionally and are merged below in the same batch order as
		// local results. A missing reply (dispatcher failure) stops the
		// search; everything merged so far stays valid.
		version := s.eng.Samples.Len()
		reqs := make([]ExecRequest, len(batch))
		for i, it := range batch {
			reqs[i] = ExecRequest{Input: it.input, Funcs: s.funcsText(it.funcs), Version: version}
		}
		replies, err := d.ExecBatch(reqs)
		if err == nil && len(replies) != len(reqs) {
			err = fmt.Errorf("search: dispatcher returned %d of %d exec replies", len(replies), len(reqs))
		}
		if err != nil {
			s.dispatchFail(err)
			return true
		}
		for i, r := range replies {
			results[i] = runResult{ex: r.Ex, samples: r.Samples, panicked: r.Panicked,
				worker: s.clampWorker(r.Worker), dur: time.Duration(r.DurNanos)}
		}
	} else if len(batch) == 1 {
		var t0 time.Time
		if tracing {
			t0 = time.Now()
		}
		results[0].ex, results[0].panicked = execOne(s.eng, batch[0].input, batch[0].funcs)
		if tracing {
			results[0].start, results[0].dur = t0, time.Since(t0)
		}
	} else {
		s.parallelDo(len(batch), func(i, worker int) {
			var t0 time.Time
			if tracing {
				t0 = time.Now()
			}
			overlay := sym.NewOverlay(s.eng.Samples)
			ex, panicked := execOne(s.eng.Clone(overlay), batch[i].input, batch[i].funcs)
			results[i] = runResult{ex: ex, overlay: overlay, panicked: panicked, worker: worker, start: t0}
			if tracing {
				results[i].dur = time.Since(t0)
			}
		})
	}
	for i, it := range batch {
		r := results[i]
		if r.ex == nil || r.ex.Canceled {
			// Dropped: the executor panicked, the run was cancelled mid-flight,
			// or the batch was cut short before this item started. The input
			// still counts as tried so the queue cannot loop on it; nothing is
			// merged or recorded — a partial run's coverage would make reports
			// depend on cancellation timing.
			s.tried[s.runKey(it.input, it.funcs)] = true
			if r.panicked {
				s.stats.Budget.ExecFailures++
				if tracing {
					s.emit(obs.Event{Kind: "exec_failure", Worker: -1,
						Str: map[string]string{"input": fmt.Sprint(it.input)}})
				}
			}
			continue
		}
		if r.overlay != nil {
			s.eng.Samples.MergeLocal(r.overlay)
		}
		for _, smp := range r.samples {
			// Remotely observed samples merge exactly like an overlay: in
			// batch order, deduplicated by Add (a stale worker replica may
			// re-observe pairs the coordinator already holds).
			s.eng.Samples.Add(smp.Fn, smp.Args, smp.Out)
		}
		s.tried[s.runKey(it.input, it.funcs)] = true
		bugsBefore := len(s.stats.Bugs)
		funcsText := s.funcsText(it.funcs)
		gained := s.stats.recordRunFuncs(r.ex.Result, it.input, funcsText)
		if r.ex.Incomplete {
			s.stats.Incomplete = true
		}
		div := it.expected != nil && diverged(r.ex.Result.Branches, it.expected)
		if div {
			s.stats.Divergences++
		}
		if tracing {
			intermediate := int64(0)
			if it.noExpand {
				intermediate = 1
			}
			s.taskEvent("exec_task", r.worker, r.start, r.dur,
				map[string]int64{
					"run": int64(s.stats.Runs), "gained": int64(gained),
					"path_len": int64(len(r.ex.PC)), "branches": int64(len(r.ex.Result.Branches)),
					"intermediate": intermediate,
				},
				map[string]string{"input": fmt.Sprint(it.input)})
			if cur := s.eng.Samples.Len(); cur > prevLen {
				s.emit(obs.Event{Kind: "samples_learned", Worker: -1,
					Num: map[string]int64{"count": int64(cur - prevLen), "total": int64(cur), "run": int64(s.stats.Runs)}})
				prevLen = cur
			}
			if div {
				s.emit(obs.Event{Kind: "divergence", Worker: -1,
					Num: map[string]int64{"run": int64(s.stats.Runs), "expected_len": int64(len(it.expected)), "actual_len": int64(len(r.ex.Result.Branches))}})
			}
			for _, b := range s.stats.Bugs[bugsBefore:] {
				s.emit(obs.Event{Kind: "bug_found", Worker: -1,
					Num: map[string]int64{"run": int64(b.Run), "site": int64(b.Site)},
					Str: map[string]string{"kind": b.Kind.String(), "msg": b.Msg, "input": fmt.Sprint(b.Input)}})
			}
		}
		if s.opts.OnRun != nil {
			rec := RunRecord{
				Run: s.stats.Runs, Input: it.input, Funcs: funcsText, Path: r.ex.Result.Path(),
				Gained: gained, Rung: it.rung,
				Seed:         !it.noExpand && it.expected == nil,
				Intermediate: it.noExpand,
				Diverged:     div,
			}
			if len(s.stats.Bugs) > bugsBefore {
				rec.Bugs = append([]Bug(nil), s.stats.Bugs[bugsBefore:]...)
			}
			s.opts.OnRun(rec)
		}
		if s.opts.StopAtFirstBug && len(s.stats.ErrorSitesFound()) > 0 {
			return true
		}
		if !it.noExpand {
			s.expand(r.ex, it.bound, gained > 0)
			if s.dispatchErr != nil {
				return true
			}
		}
	}
	return false
}

// parallelDo runs fn(i, worker) for every i in [0, n), fanning the indices
// out over min(Workers, n) goroutines. With one worker (or one task) it runs
// inline on the coordinator. fn implementations write only to their own index
// i and their own worker slot.
func (s *searcher) parallelDo(n int, fn func(i, worker int)) {
	workers := s.opts.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if s.canceled() {
				return
			}
			fn(i, 0)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n || s.canceled() {
					return
				}
				fn(i, w)
			}
		}(w)
	}
	wg.Wait()
}

// diverged reports whether the actual trace fails to realize the prediction.
func diverged(actual, expected []mini.BranchEvent) bool {
	if len(actual) < len(expected) {
		return true
	}
	for i := range expected {
		if actual[i] != expected[i] {
			return true
		}
	}
	return false
}

// target is one proof obligation of an expansion: ALT(pc_k) with its trace
// prediction. The solve phase fills the result fields.
type target struct {
	alt      sym.Expr
	expected []mini.BranchEvent
	k        int
	cacheKey string
	// Higher-order result: core strategy (no fallback defs) and outcome.
	strategy *fol.Strategy
	outcome  fol.Outcome
	// Satisfiability result (non-higher-order modes, and the degraded rungs
	// of higher-order mode).
	status smt.Status
	model  *smt.Model
	// rung is the final precision-ladder rung attempted (higher-order mode):
	// RungProof unless Budget.Degrade walked the target down after a cut-short
	// proof, in which case status/model hold the lower rung's result.
	rung Rung
	// panicked marks a validity proof that panicked and was recovered (the
	// outcome is then unknown). fromCache marks a selection-time cache hit —
	// such targets skip ProveCore but still run degraded retries, which
	// depend on the parent input and are never cached. done is set by the
	// worker that finished the target; unset means the fan-out was cancelled
	// before the target ran, and the coordinator skips it entirely.
	panicked  bool
	fromCache bool
	done      bool
	// Scheduling facts for the trace (which worker discharged the proof,
	// when, how long); zero for cache hits. Excluded from canonical streams.
	worker int
	start  time.Time
	dur    time.Duration
}

// expand generates new work items by negating each negatable constraint of
// the execution from the generational bound onward. Each target is sliced to
// its related constraints and deduplicated before any solver work; the
// surviving targets' proof obligations all read the same frozen sample store,
// so they are discharged concurrently and their results applied in constraint
// order.
func (s *searcher) expand(ex *concolic.Execution, bound int, hot bool) {
	// The prefix grows by one conjunct per constraint; precomputing each
	// conjunct's variable set here keeps the per-target slicing linear in the
	// path length instead of re-extracting every prefix entry's variables for
	// every target (quadratic in path length).
	prefix := make([]sliceEntry, 0, len(ex.PC))
	for i := 0; i < bound && i < len(ex.PC); i++ {
		e := ex.PC[i].Expr
		prefix = append(prefix, sliceEntry{expr: e, vars: depIDs(e)})
	}
	var targets, callback []*target
	for k := bound; k < len(ex.PC); k++ {
		c := ex.PC[k]
		if c.IsConcretization {
			prefix = append(prefix, sliceEntry{expr: c.Expr, vars: depIDs(c.Expr)})
			continue
		}
		negated := sym.NotExpr(c.Expr)
		expected := ex.ExpectedTrace(k)
		key := targetKey(expected, negated)
		if !s.targeted[key] {
			s.targeted[key] = true
			t := &target{alt: sliceAltPre(prefix, negated), expected: expected, k: k, worker: -1}
			if hasInputFn(t.alt) {
				// The target constrains a function-valued input: it is solved
				// by the witness-constructor path (funcsynth.go), which
				// materializes a concrete decision table per generated test.
				callback = append(callback, t)
			} else {
				targets = append(targets, t)
			}
			if s.tracing() {
				s.emit(obs.Event{Kind: "target", Worker: -1,
					Num: map[string]int64{
						"k": int64(k), "conjuncts": int64(len(sym.Conjuncts(t.alt))),
						"formula_size": int64(len(t.alt.Key())),
					}})
			}
		}
		prefix = append(prefix, sliceEntry{expr: c.Expr, vars: depIDs(c.Expr)})
	}
	if len(targets) > 0 {
		if s.eng.Mode == concolic.ModeHigherOrder {
			s.solveTargetsHigherOrder(targets, ex, hot)
		} else {
			s.solveTargetsSat(targets, ex, hot)
		}
	}
	if len(callback) > 0 {
		s.solveTargetsCallback(callback, ex, hot)
	}
}

// solveTargetsHigherOrder discharges the expansion's validity proofs:
// cache-missing targets fan out over the workers (ProveCore only reads the
// sample store and allocates from the synchronized pool), then results are
// applied — and the cache is filled — in constraint order on the coordinator.
// Computing the cache key also memoizes the formula's canonical string, so
// workers never write the lazy key fields of shared subterms.
//
// Under Budget.Degrade, a target whose proof was cut short (timeout, node
// budget, recovered panic) is walked down the precision ladder on the same
// worker (degradeTarget). Degraded results depend on the parent input and are
// never cached; cache-hit targets with a degradable outcome therefore still
// fan out, just skipping the proof. Timed-out and panicked proofs are not
// cached either — an entry recording "ran out of wall clock" would poison
// every later occurrence of the formula.
func (s *searcher) solveTargetsHigherOrder(targets []*target, ex *concolic.Execution, hot bool) {
	fallback := ex.Input
	version := s.eng.Samples.Len()
	fb := make(map[int]int64, len(fallback))
	for i, v := range s.eng.InputVars {
		fb[v.ID] = fallback[i]
	}
	var todo []*target
	for _, t := range targets {
		t.cacheKey = proveKey(t.alt, version)
		if e, ok := s.cache.getProve(t.cacheKey); ok {
			t.strategy, t.outcome, t.fromCache = e.strategy, e.outcome, true
			if s.shouldDegrade(t.outcome, false) {
				todo = append(todo, t)
			} else {
				t.done = true
			}
		} else {
			todo = append(todo, t)
		}
	}
	// prove shields the coordinator from prover panics (injected faults or
	// defects): a panicking proof becomes an unknown, degradable outcome.
	prove := func(t *target, t0 time.Time) {
		defer func() {
			if rec := recover(); rec != nil {
				t.strategy, t.outcome, t.panicked = nil, fol.OutcomeUnknown, true
			}
		}()
		t.strategy, t.outcome = fol.ProveCore(t.alt, s.eng.Samples, fol.Options{
			Pool:             s.eng.Pool,
			VarBounds:        s.varBounds,
			NoRefute:         !s.opts.Refute,
			MaxNodes:         s.opts.ProverNodes,
			Obs:              s.obs,
			Ctx:              s.ctx,
			Deadline:         s.proofDeadline(t0),
			NoIncrementalSMT: s.opts.NoIncrementalSMT,
		})
	}
	if d := s.opts.Dispatch; d != nil {
		if !s.dispatchProofs(d, todo, version, fb) {
			return
		}
	} else {
		s.parallelDo(len(todo), func(i, worker int) {
			t := todo[i]
			t0 := time.Now()
			if !t.fromCache {
				prove(t, t0)
			}
			if s.shouldDegrade(t.outcome, t.panicked) {
				s.degradeTarget(t, fb, t0)
			}
			t.worker, t.start, t.dur = worker, t0, time.Since(t0)
			atomic.AddInt64(&s.solveNanos, int64(t.dur))
			s.stats.ProofsPerWorker[worker]++
			t.done = true
		})
	}
	for _, t := range targets {
		if !t.done {
			continue // cancelled before this target's turn; nothing to account
		}
		// Cache accounting happens here, in constraint order, so the hit and
		// miss counts are identical at every worker count. (Two targets of
		// one fan-out sharing a formula are proved twice concurrently; the
		// second is still accounted as a hit, its duplicate result dropped.)
		cached := "miss"
		if e, ok := s.cache.getProve(t.cacheKey); ok {
			cached = "hit"
			s.stats.ProofCacheHits++
			t.strategy, t.outcome = e.strategy, e.outcome
		} else {
			s.stats.ProofCacheMisses++
			if t.outcome != fol.OutcomeTimeout && !t.panicked {
				s.cache.putProve(t.cacheKey, proveEntry{strategy: t.strategy, outcome: t.outcome})
			}
		}
		s.stats.ProverCalls++
		if s.tracing() {
			s.emit(obs.Event{Kind: "cache", Worker: -1,
				Str: map[string]string{"op": "prove", "result": cached}})
			num := map[string]int64{"k": int64(t.k), "formula_size": int64(len(t.alt.Key()))}
			if t.strategy != nil {
				num["defs"] = int64(len(t.strategy.Defs))
				num["steps"] = int64(len(t.strategy.Proof))
			}
			s.taskEvent("prove", t.worker, t.start, t.dur, num,
				map[string]string{"verdict": t.outcome.String(), "cache": cached})
		}
		if t.panicked {
			s.stats.Budget.ProverPanics++
		}
		switch t.outcome {
		case fol.OutcomeInvalid:
			s.stats.ProverInvalid++
			continue
		case fol.OutcomeTimeout:
			s.stats.Budget.ProofTimeouts++
			s.stats.ProverUnknown++
		case fol.OutcomeUnknown:
			s.stats.ProverUnknown++
		default:
			s.stats.ProverProved++
			pt := &pendingTarget{
				// The cached strategy is shared; FillFallback copies it while
				// fixing this target's unconstrained variables at the parent
				// input's values.
				strategy: fol.FillFallback(t.strategy, t.alt, fb),
				alt:      t.alt,
				expected: t.expected,
				fallback: fallback,
				funcs:    ex.Funcs,
				bound:    t.k + 1,
				retries:  s.opts.MaxMultiStep,
				hot:      hot,
			}
			s.resolveAndEnqueue(pt, true)
			continue
		}
		// The proof was cut short. If the degradation ladder ran, the target
		// carries a lower rung's satisfiability result; account it and turn a
		// sat model into a test tagged with its rung.
		if t.rung == RungProof {
			continue
		}
		switch t.rung {
		case RungQF:
			s.stats.Budget.DegradedQF++
		case RungConcretize:
			s.stats.Budget.DegradedConc++
		}
		if t.status == smt.StatusTimeout {
			s.stats.Budget.ProofTimeouts++
		}
		if s.tracing() {
			s.emit(obs.Event{Kind: "degrade", Worker: -1,
				Num: map[string]int64{"k": int64(t.k)},
				Str: map[string]string{"rung": t.rung.String(), "status": t.status.String()}})
		}
		if t.status != smt.StatusSat {
			continue
		}
		s.enqueueTest(s.inputFrom(t.model.Vars, fallback), ex.Funcs, t.expected, t.k+1, hot, t.rung)
	}
}

// solveTodoLocal discharges cache-missing satisfiability targets on the
// local worker pool, one solver session per worker.
func (s *searcher) solveTodoLocal(todo []*target) {
	s.parallelDo(len(todo), func(i, worker int) {
		t := todo[i]
		t0 := time.Now()
		if ses := s.satSession(worker); ses != nil {
			// Exact-mode sessions answer bit-identically to a fresh Solve, so
			// which worker (and hence which session) serves a target cannot
			// influence the result; only the shared Ackermann expansion and
			// interned structure are reused across a worker's targets.
			t.status, t.model = ses.SolveUnder(t.alt, s.ctx, s.proofDeadline(t0))
		} else {
			t.status, t.model = smt.Solve(t.alt, smt.Options{
				Pool: s.eng.Pool, VarBounds: s.varBounds, Obs: s.obs,
				Ctx: s.ctx, Deadline: s.proofDeadline(t0),
			})
		}
		t.worker, t.start, t.dur = worker, t0, time.Since(t0)
		atomic.AddInt64(&s.solveNanos, int64(t.dur))
		s.stats.ProofsPerWorker[worker]++
		t.done = true
	})
}

// solveTargetsSat is classic test generation: satisfiability checks of
// ALT(pc), fanned out and cached like the validity proofs (solver results do
// not depend on the sample store, so the cache key is the formula alone).
func (s *searcher) solveTargetsSat(targets []*target, ex *concolic.Execution, hot bool) {
	fallback := ex.Input
	var todo []*target
	for _, t := range targets {
		t.cacheKey = t.alt.Key()
		if e, ok := s.cache.getSolve(t.cacheKey); ok {
			// Stash the entry on the target: under Options.CacheCap it can
			// be evicted between selection and accounting (by a later fill
			// in this same batch), and a selection-time hit must keep its
			// result either way.
			t.status, t.model, t.fromCache, t.done = e.status, e.model, true, true
		} else {
			todo = append(todo, t)
		}
	}
	if d := s.opts.Dispatch; d != nil {
		if !s.dispatchSolves(d, todo) {
			return
		}
	} else {
		s.solveTodoLocal(todo)
	}
	for _, t := range targets {
		if !t.done {
			if _, ok := s.cache.solve[t.cacheKey]; !ok {
				continue // cancelled before this target's turn
			}
		}
		cached := "miss"
		if e, ok := s.cache.getSolve(t.cacheKey); ok {
			cached = "hit"
			s.stats.ProofCacheHits++
			t.status, t.model = e.status, e.model
		} else {
			s.stats.ProofCacheMisses++
			// A timed-out query is not cached: the verdict records wall-clock
			// exhaustion, not a property of the formula.
			if t.status != smt.StatusTimeout {
				s.cache.putSolve(t.cacheKey, solveEntry{status: t.status, model: t.model})
			}
		}
		if t.status == smt.StatusTimeout {
			s.stats.Budget.ProofTimeouts++
		}
		s.stats.SolverCalls++
		if s.tracing() {
			s.emit(obs.Event{Kind: "cache", Worker: -1,
				Str: map[string]string{"op": "solve", "result": cached}})
			s.taskEvent("solve", t.worker, t.start, t.dur,
				map[string]int64{"k": int64(t.k), "formula_size": int64(len(t.alt.Key()))},
				map[string]string{"status": t.status.String(), "cache": cached})
		}
		if t.status != smt.StatusSat {
			continue
		}
		s.stats.SolverSat++
		input := make([]int64, len(fallback))
		copy(input, fallback)
		for i, v := range s.eng.InputVars {
			if val, ok := t.model.Vars[v.ID]; ok {
				input[i] = val
			}
		}
		// Lower modes already solve at the quantifier-free rung; tag their
		// tests accordingly so per-rung counts are meaningful across modes.
		s.enqueueTest(input, ex.Funcs, t.expected, t.k+1, hot, RungQF)
	}
}

// resolveAndEnqueue tries to turn a proved strategy into a concrete test; on
// missing samples it schedules an intermediate test plus a continuation.
// first marks the initial attempt (for multi-step accounting).
func (s *searcher) resolveAndEnqueue(pt *pendingTarget, first bool) bool {
	res := pt.strategy.Resolve(s.eng.Samples)
	if res.Complete {
		input := s.inputFrom(res.Values, pt.fallback)
		if !s.inBounds(input) {
			return false
		}
		// Final sanity check against the samples: the strategy is a proof,
		// so this must hold; it guards the implementation.
		values := map[int]int64{}
		for i, v := range s.eng.InputVars {
			values[v.ID] = input[i]
		}
		if ok, probes := fol.Holds(pt.alt, values, s.eng.Samples); len(probes) == 0 && !ok {
			return false
		}
		s.enqueueTest(input, pt.funcs, pt.expected, pt.bound, pt.hot, RungProof)
		return true
	}
	if pt.retries <= 0 {
		return false
	}
	// Multi-step test generation (Example 7): run an intermediate test with
	// the resolved values filled in, hoping the program samples the probes.
	if first {
		s.stats.MultiStepChains++
	}
	pt.retries--
	intermediate := s.inputFrom(res.Values, pt.fallback)
	if !s.inBounds(intermediate) {
		return false
	}
	s.stats.IntermediateTests++
	if s.tracing() {
		s.emit(obs.Event{Kind: "multistep", Worker: -1,
			Num: map[string]int64{"retries_left": int64(pt.retries), "bound": int64(pt.bound), "probes": int64(len(res.Probes))},
			Str: map[string]string{"intermediate": fmt.Sprint(intermediate)}})
	}
	// Intermediate sample-collection runs and their continuations always go
	// hot: they complete a proof already in hand. They run under the parent's
	// function inputs, so the samples they collect are the parent function's.
	s.hot = append(s.hot, item{input: intermediate, funcs: pt.funcs, noExpand: true})
	s.hot = append(s.hot, item{pending: pt})
	return true
}

// resumePending re-resolves a blocked strategy after intermediate tests.
func (s *searcher) resumePending(pt *pendingTarget) bool {
	return s.resolveAndEnqueue(pt, false)
}

func (s *searcher) inputFrom(values map[int]int64, fallback []int64) []int64 {
	input := make([]int64, len(fallback))
	copy(input, fallback)
	for i, v := range s.eng.InputVars {
		if val, ok := values[v.ID]; ok {
			input[i] = val
		}
	}
	return input
}

func (s *searcher) inBounds(input []int64) bool {
	for i, v := range s.eng.InputVars {
		b, ok := s.varBounds[v.ID]
		if !ok {
			continue
		}
		if b.HasLo && input[i] < b.Lo {
			return false
		}
		if b.HasHi && input[i] > b.Hi {
			return false
		}
	}
	return true
}

// enqueueTest queues a generated test, recording which precision-ladder rung
// produced it (RungProof for strategies, RungQF for plain solving, lower for
// degraded targets).
func (s *searcher) enqueueTest(input []int64, funcs []*mini.FuncValue, expected []mini.BranchEvent, bound int, hot bool, rung Rung) {
	if s.tried[s.runKey(input, funcs)] {
		return
	}
	s.stats.TestsGenerated++
	s.stats.Budget.TestsByRung[rung]++
	if s.tracing() {
		queue := "cold"
		if hot {
			queue = "hot"
		}
		ev := obs.Event{Kind: "test_generated", Worker: -1,
			Num: map[string]int64{"bound": int64(bound)},
			Str: map[string]string{"input": fmt.Sprint(input), "queue": queue, "rung": rung.String()}}
		if ft := s.funcsText(funcs); ft != nil {
			ev.Str["funcs"] = strings.Join(ft, "; ")
		}
		s.emit(ev)
	}
	it := item{input: input, funcs: funcs, expected: expected, bound: bound, rung: rung}
	if hot {
		s.hot = append(s.hot, it)
	} else {
		s.cold = append(s.cold, it)
	}
}
