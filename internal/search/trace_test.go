package search_test

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
	"time"

	"hotg/internal/concolic"
	"hotg/internal/lexapp"
	"hotg/internal/obs"
	"hotg/internal/obshttp"
	"hotg/internal/search"
)

// tracedRun performs one observed search and returns the observer (with the
// retained event stream) and the stats.
func tracedRun(w *lexapp.Workload, mode concolic.Mode, opts search.Options, workers int) (*obs.Obs, *search.Stats) {
	eng := concolic.New(w.Build(), mode)
	o := obs.New()
	o.Trace = obs.NewTracer(nil).Keep()
	if opts.Seeds == nil {
		opts.Seeds = w.Seeds
	}
	if opts.Bounds == nil {
		opts.Bounds = w.Bounds
	}
	opts.Workers = workers
	opts.Obs = o
	st := search.Run(eng, opts)
	return o, st
}

// TestTraceDeterministicAcrossWorkers is the observability counterpart of the
// PR-1 trajectory determinism test: the canonical event stream (every event,
// every attribute, minus timestamps/durations/worker IDs) of the lexer
// higher-order search is identical at workers=1 and workers=4.
func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	opts := search.Options{MaxRuns: 120}
	o1, st1 := tracedRun(lexapp.Lexer(), concolic.ModeHigherOrder, opts, 1)
	if st1.ProverCalls == 0 {
		t.Fatal("lexer search made no prover calls; trace test is vacuous")
	}
	base := o1.Trace.CanonicalStream()
	if base == "" {
		t.Fatal("no events emitted")
	}
	for _, workers := range []int{4} {
		o4, _ := tracedRun(lexapp.Lexer(), concolic.ModeHigherOrder, search.Options{MaxRuns: 120}, workers)
		got := o4.Trace.CanonicalStream()
		if got != base {
			reportStreamDiff(t, base, got, workers)
		}
	}
}

// TestTraceDeterministicSatMode covers the satisfiability (non-higher-order)
// solve path's event stream.
func TestTraceDeterministicSatMode(t *testing.T) {
	o1, _ := tracedRun(lexapp.Lexer(), concolic.ModeSound, search.Options{MaxRuns: 60}, 1)
	o4, _ := tracedRun(lexapp.Lexer(), concolic.ModeSound, search.Options{MaxRuns: 60}, 4)
	if got, want := o4.Trace.CanonicalStream(), o1.Trace.CanonicalStream(); got != want {
		reportStreamDiff(t, want, got, 4)
	}
}

// TestTraceDeterministicMultiStep covers multi-step continuations (multistep
// and samples_learned events).
func TestTraceDeterministicMultiStep(t *testing.T) {
	o1, _ := tracedRun(lexapp.KStep(3), concolic.ModeHigherOrder, search.Options{MaxRuns: 60, MaxMultiStep: 4}, 1)
	o4, _ := tracedRun(lexapp.KStep(3), concolic.ModeHigherOrder, search.Options{MaxRuns: 60, MaxMultiStep: 4}, 4)
	if got, want := o4.Trace.CanonicalStream(), o1.Trace.CanonicalStream(); got != want {
		reportStreamDiff(t, want, got, 4)
	}
}

func reportStreamDiff(t *testing.T, want, got string, workers int) {
	t.Helper()
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			t.Fatalf("canonical stream diverges at event %d (workers=%d):\nworkers=1: %s\nworkers=%d: %s",
				i+1, workers, wl[i], workers, gl[i])
		}
	}
	t.Fatalf("canonical stream length differs: workers=1 has %d events, workers=%d has %d",
		len(wl), workers, len(gl))
}

// TestTraceEventCoverage asserts the lexer trace contains every pipeline
// event kind the schema promises for a higher-order search.
func TestTraceEventCoverage(t *testing.T) {
	o, st := tracedRun(lexapp.Lexer(), concolic.ModeHigherOrder, search.Options{MaxRuns: 120}, 4)
	kinds := map[string]int{}
	for _, ev := range o.Trace.Events() {
		kinds[ev.Kind]++
	}
	for _, want := range []string{"run_start", "run_end", "target", "prove", "cache", "exec_task", "test_generated", "samples_learned"} {
		if kinds[want] == 0 {
			t.Errorf("no %q events in lexer trace (kinds seen: %v)", want, kinds)
		}
	}
	if kinds["run_start"] != 1 || kinds["run_end"] != 1 {
		t.Errorf("want exactly one run_start and run_end, got %d and %d", kinds["run_start"], kinds["run_end"])
	}
	if kinds["exec_task"] != st.Runs {
		t.Errorf("exec_task events = %d, want one per run = %d", kinds["exec_task"], st.Runs)
	}
	if kinds["prove"] != st.ProverCalls {
		t.Errorf("prove events = %d, want one per prover call = %d", kinds["prove"], st.ProverCalls)
	}
	if kinds["bug_found"] != len(st.Bugs) {
		t.Errorf("bug_found events = %d, want %d", kinds["bug_found"], len(st.Bugs))
	}
}

// TestTraceMetricsPopulated asserts the registry ends up with the headline
// latency histograms and cache counters after an observed search.
func TestTraceMetricsPopulated(t *testing.T) {
	o, st := tracedRun(lexapp.Lexer(), concolic.ModeHigherOrder, search.Options{MaxRuns: 120}, 4)
	snap := o.Metrics.Snapshot()
	byName := map[string]obs.MetricValue{}
	for _, m := range snap {
		byName[m.Name] = m
	}
	for _, name := range []string{"fol.prove.ns", "smt.solve.ns", "concolic.exec.ns", "concolic.path.len"} {
		h, ok := byName[name]
		if !ok || h.Value == 0 {
			t.Errorf("histogram %s missing or empty", name)
			continue
		}
		if h.P50 > h.P90 || h.P90 > h.P99 || h.P99 > h.Max {
			t.Errorf("%s percentiles not monotone: p50=%d p90=%d p99=%d max=%d", name, h.P50, h.P90, h.P99, h.Max)
		}
	}
	if got := o.Metrics.Get("search.proof_cache.hits"); got != int64(st.ProofCacheHits) {
		t.Errorf("search.proof_cache.hits = %d, want %d", got, st.ProofCacheHits)
	}
	if got := o.Metrics.Get("search.proof_cache.misses"); got != int64(st.ProofCacheMisses) {
		t.Errorf("search.proof_cache.misses = %d, want %d", got, st.ProofCacheMisses)
	}
	if got := o.Metrics.Get("concolic.runs"); got != int64(st.Runs) {
		t.Errorf("concolic.runs = %d, want %d", got, st.Runs)
	}
}

// TestChromeTraceValid checks the Chrome trace_event export is valid JSON in
// the shape Perfetto loads: a traceEvents array with ph/pid/tid on every
// entry and one named track per worker plus the coordinator.
func TestChromeTraceValid(t *testing.T) {
	o, _ := tracedRun(lexapp.Lexer(), concolic.ModeHigherOrder, search.Options{MaxRuns: 80}, 4)
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, o.Trace.Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	threadNames := map[float64]string{}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		if ph == "M" {
			args := ev["args"].(map[string]interface{})
			threadNames[ev["tid"].(float64)] = args["name"].(string)
		}
		if _, ok := ev["pid"]; !ok {
			t.Fatal("event missing pid")
		}
	}
	if phases["X"] == 0 || phases["i"] == 0 {
		t.Errorf("want both complete (X) and instant (i) events, got %v", phases)
	}
	// Coordinator + 4 workers that did work (worker 0..3 all show up on a
	// 120-run lexer search; tolerate ≥2 tracks to stay robust).
	if len(threadNames) < 2 {
		t.Errorf("want at least coordinator + one worker track, got %v", threadNames)
	}
	if threadNames[0] != "coordinator" {
		t.Errorf("tid 0 should be the coordinator, got %v", threadNames)
	}
}

// introspectedRun is tracedRun with the full live-introspection apparatus
// attached: a flight recorder on the tracer, the runtime sampler publishing
// gauges, and a goroutine hammering the introspection read paths (recorder
// snapshots and registry scrapes) for the whole search.
func introspectedRun(w *lexapp.Workload, mode concolic.Mode, opts search.Options, workers int) (*obs.Obs, *search.Stats) {
	eng := concolic.New(w.Build(), mode)
	o := obs.New()
	o.Trace = obs.NewTracer(nil).Keep().WithRecorder(obs.NewFlightRecorder(256))
	srv := obshttp.New(o)
	stopSampler := srv.StartSampler(time.Millisecond)
	defer stopSampler()
	done := make(chan struct{})
	reads := make(chan int, 1)
	go func() {
		defer close(done)
		n := 0
		for {
			select {
			case reads <- n:
				return
			default:
			}
			o.Trace.Recorder().Snapshot()
			obs.WriteOpenMetrics(io.Discard, o.Metrics)
			n++
		}
	}()
	if opts.Seeds == nil {
		opts.Seeds = w.Seeds
	}
	if opts.Bounds == nil {
		opts.Bounds = w.Bounds
	}
	opts.Workers = workers
	opts.Obs = o
	st := search.Run(eng, opts)
	<-reads
	<-done
	return o, st
}

// TestTraceDeterministicWithIntrospection is the acceptance check that live
// introspection is invisible to the determinism contract: with a flight
// recorder, the runtime sampler, and concurrent readers all active, the
// canonical stream at workers 1, 4, and 8 is bit-identical — and identical to
// the stream of a plain un-introspected run.
func TestTraceDeterministicWithIntrospection(t *testing.T) {
	opts := search.Options{MaxRuns: 120}
	plain, _ := tracedRun(lexapp.Lexer(), concolic.ModeHigherOrder, opts, 1)
	base := plain.Trace.CanonicalStream()
	if base == "" {
		t.Fatal("no events emitted")
	}
	for _, workers := range []int{1, 4, 8} {
		o, _ := introspectedRun(lexapp.Lexer(), concolic.ModeHigherOrder, search.Options{MaxRuns: 120}, workers)
		if got := o.Trace.CanonicalStream(); got != base {
			t.Errorf("introspected run at workers=%d diverges from plain run", workers)
			reportStreamDiff(t, base, got, workers)
		}
		if o.Trace.Recorder().Total() == 0 {
			t.Fatal("flight recorder saw no events")
		}
		// The sampler's gauges landed in the registry, not the trace.
		if o.Metrics.Get("runtime.goroutines") == 0 {
			t.Error("runtime sampler published no gauges")
		}
		for _, ev := range o.Trace.Events() {
			if strings.HasPrefix(ev.Kind, "runtime.") {
				t.Fatalf("sampler leaked event %q into the trace", ev.Kind)
			}
		}
	}
}
