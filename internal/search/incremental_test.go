package search_test

import (
	"testing"

	"hotg/internal/concolic"
	"hotg/internal/lexapp"
	"hotg/internal/search"
)

// TestIncrementalSMTEquivalence is the gate for the incremental-solver
// rollout: with sessions enabled (the default) the search trajectory must be
// bit-identical to the one-shot solver path (NoIncrementalSMT) at workers
// 1, 4, and 8. The lexer cases exercise the prover's private exact sessions
// and the per-worker satisfiability sessions; the token-parser case adds the
// refutation pass, whose warm session discharges the candidate completions.
//
// The refutation case uses a workload whose refutation queries all complete
// within the solver budgets. That is deliberate: warm-session refutation is
// status-sound but can be strictly *more* conclusive than the one-shot path
// on budget-bound queries (retained theory lemmas let a check finish inside
// the same conflict/round caps where the one-shot solver runs out), which
// shows up as OutcomeInvalid where the baseline reports OutcomeUnknown. The
// distinction is reporting-only — neither outcome generates a test — so the
// explored trajectory is identical either way; see DESIGN.md §11.
func TestIncrementalSMTEquivalence(t *testing.T) {
	cases := []struct {
		name string
		wl   *lexapp.Workload
		mode concolic.Mode
		opts search.Options
	}{
		{"lexer/static", lexapp.Lexer(), concolic.ModeStatic, search.Options{MaxRuns: 120}},
		{"lexer/higher-order", lexapp.Lexer(), concolic.ModeHigherOrder, search.Options{MaxRuns: 120}},
		{"tokenparser/refute", lexapp.TokenParser(), concolic.ModeHigherOrder, search.Options{MaxRuns: 60, Refute: true}},
	}
	for _, c := range cases {
		opts := c.opts
		opts.NoIncrementalSMT = true
		base := fingerprint(runWorkers(c.wl, c.mode, opts, 1, false))
		for _, workers := range []int{1, 4, 8} {
			got := fingerprint(runWorkers(c.wl, c.mode, c.opts, workers, false))
			if got != base {
				t.Errorf("%s workers=%d: incremental trajectory differs from one-shot baseline\n--- one-shot:\n%s--- incremental:\n%s",
					c.name, workers, base, got)
			}
		}
	}
}
