package search_test

import (
	"testing"

	"hotg/internal/concolic"
	"hotg/internal/lexapp"
	"hotg/internal/search"
)

// frontierSnapshot runs a checkpointed search and returns a mid-run snapshot
// with a non-trivial frontier.
func frontierSnapshot(t *testing.T) *search.Snapshot {
	t.Helper()
	w, ok := lexapp.Get("lexer")
	if !ok {
		t.Fatal("workload lexer not registered")
	}
	var snaps []*search.Snapshot
	search.Run(concolic.New(w.Build(), concolic.ModeHigherOrder), search.Options{
		MaxRuns: 60, Seeds: w.Seeds, Bounds: w.Bounds, Workers: 1,
		Checkpoint: search.CheckpointOptions{
			Every: 5,
			Sink:  func(s *search.Snapshot) error { snaps = append(snaps, s); return nil },
		},
	})
	for _, s := range snaps {
		if len(s.Hot)+len(s.Cold) > 1 {
			return s
		}
	}
	t.Fatal("no checkpoint with a multi-item frontier")
	return nil
}

// TestFrontierShardExportImport: FrontierShardCounts partitions the whole
// frontier, ExportFrontier splits it losslessly by shard, and re-importing
// every shard in order reassembles the exact queues.
func TestFrontierShardExportImport(t *testing.T) {
	snap := frontierSnapshot(t)
	const n = 4

	counts := snap.FrontierShardCounts(n)
	totalHot, totalCold := 0, 0
	for _, c := range counts {
		totalHot += c.Hot
		totalCold += c.Cold
	}
	if totalHot != len(snap.Hot) || totalCold != len(snap.Cold) {
		t.Fatalf("shard counts (%d hot, %d cold) do not cover the frontier (%d hot, %d cold)",
			totalHot, totalCold, len(snap.Hot), len(snap.Cold))
	}

	merged := snap.ExportFrontier(0, n)
	merged.Hot, merged.Cold = nil, nil
	for shard := 0; shard < n; shard++ {
		part := snap.ExportFrontier(shard, n)
		if len(part.Hot) != counts[shard].Hot || len(part.Cold) != counts[shard].Cold {
			t.Errorf("shard %d: export sizes (%d, %d) disagree with counts (%d, %d)",
				shard, len(part.Hot), len(part.Cold), counts[shard].Hot, counts[shard].Cold)
		}
		merged.ImportFrontier(part)
	}
	if len(merged.Hot) != len(snap.Hot) || len(merged.Cold) != len(snap.Cold) {
		t.Fatalf("reassembly dropped items: (%d, %d) vs (%d, %d)",
			len(merged.Hot), len(merged.Cold), len(snap.Hot), len(snap.Cold))
	}
	// Item multiset check via the dedup key material: inputs survive the
	// split/merge exactly (order within a shard is preserved by export;
	// cross-shard interleaving legitimately changes).
	seen := make(map[string]int)
	for _, rec := range snap.Hot {
		seen[keyOf(rec.Input)]++
	}
	for _, rec := range merged.Hot {
		seen[keyOf(rec.Input)]--
	}
	for k, v := range seen {
		if v != 0 {
			t.Fatalf("hot item %q count off by %d after reassembly", k, v)
		}
	}
}

func keyOf(in []int64) string {
	b := make([]byte, 0, len(in)*3)
	for _, v := range in {
		b = append(b, byte(v), byte(v>>8), ',')
	}
	return string(b)
}
