package search

import "hotg/internal/obs"

// liveGauges publishes the coordinator's in-flight progress into the metrics
// registry so a live introspection server (/statusz, /metrics) can watch a
// campaign mid-run. The handles are resolved once — the per-iteration cost is
// a handful of atomic stores, and with observability disabled every handle is
// nil and each Set is a single pointer check.
//
// Gauges are registry-only: they never touch the tracer, so the canonical
// trace stream is identical whether or not anyone is watching.
type liveGauges struct {
	frontierHot  *obs.Gauge
	frontierCold *obs.Gauge
	runs         *obs.Gauge
	tests        *obs.Gauge
	bugs         *obs.Gauge
	remaining    *obs.Gauge
}

func (g *liveGauges) init(o *obs.Obs) {
	if !o.Enabled() {
		return
	}
	g.frontierHot = o.Gauge("search.frontier.hot")
	g.frontierCold = o.Gauge("search.frontier.cold")
	g.runs = o.Gauge("search.live.runs")
	g.tests = o.Gauge("search.live.tests")
	g.bugs = o.Gauge("search.live.bugs")
	g.remaining = o.Gauge("search.live.runs_remaining")
}

// publish refreshes the live view from the coordinator state. Called between
// batches (coordinator goroutine only) and once more after the final batch,
// so the post-run values equal the search's final Stats.
func (s *searcher) publishLive() {
	g := &s.live
	if g.runs == nil {
		return
	}
	g.frontierHot.Set(int64(len(s.hot)))
	g.frontierCold.Set(int64(len(s.cold)))
	g.runs.Set(int64(s.stats.Runs))
	g.tests.Set(int64(s.stats.TestsGenerated))
	g.bugs.Set(int64(len(s.stats.Bugs)))
	rem := s.opts.MaxRuns - s.stats.Runs
	if rem < 0 {
		rem = 0
	}
	g.remaining.Set(int64(rem))
}
