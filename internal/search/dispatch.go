package search

// This file is the fleet integration seam: a Dispatcher lets a distributed
// coordinator (internal/fleet) take over the three compute fan-outs of the
// search — test execution, validity proofs, satisfiability checks — without
// touching the canonical trajectory. The searcher keeps doing exactly what it
// does in-process: it batches only mutually independent work and applies the
// results in canonical (enqueue/constraint) order. A Dispatcher merely
// changes *where* each unit of a batch is computed; since every unit is a
// pure function of its request plus the frozen sample store, the merged
// outcome — and therefore Stats.Canonical — is bit-identical whether the
// batch ran on local goroutines, on one remote worker, or scattered across a
// fleet of any size. DESIGN.md §13 spells out the full argument.
//
// The sample-store version rides on every request because the prover's
// verdicts (and choice order) depend on the store's exact contents and
// insertion order: a remote worker must replay the coordinator's store up to
// precisely that version before proving. Execution requests carry it only as
// a sync hint — concrete behavior never reads the store — and return the
// samples the run observed so the coordinator can merge them in batch order,
// exactly like the in-process overlay merge.

import (
	"fmt"
	"hash/fnv"
	"io"
	"sync/atomic"
	"time"

	"hotg/internal/concolic"
	"hotg/internal/fol"
	"hotg/internal/obs"
	"hotg/internal/smt"
	"hotg/internal/sym"
)

// ExecRequest asks for one concolic execution.
type ExecRequest struct {
	// Input is the input vector to execute.
	Input []int64
	// Funcs are the function-valued inputs in canonical textual form, one per
	// function parameter ("" for a nil entry, meaning the constant-0 default).
	// Nil for first-order programs.
	Funcs []string
	// Version is the coordinator's sample-store length at dispatch time. It
	// is a replica-sync hint only: execution semantics never read the store,
	// and a stale replica at most re-observes samples the coordinator already
	// merged (deduplicated on apply).
	Version int
}

// ExecReply carries one execution result back to the coordinator.
type ExecReply struct {
	// Ex is the reconstructed execution, or nil when the run was dropped
	// (executor panic or worker-side failure); a nil Ex with Panicked set is
	// accounted exactly like a local executor panic.
	Ex *concolic.Execution
	// Samples are the input–output pairs this run newly observed, in
	// observation order — the remote analogue of the in-process overlay. The
	// coordinator merges them with SampleStore.Add in batch order.
	Samples []sym.Sample
	// Panicked marks a run dropped by an executor panic.
	Panicked bool
	// Worker identifies which fleet worker computed the result (for the
	// per-worker load figures; clamped into range on apply). Scheduling
	// fact — never part of the canonical stream.
	Worker int
	// DurNanos is the remote compute time, for the trace. Scheduling fact.
	DurNanos int64
}

// ProveRequest asks for one higher-order validity proof of an ALT(pc) target.
type ProveRequest struct {
	// Alt is the sliced target formula.
	Alt sym.Expr
	// Version is the exact sample-store length the proof must read: the
	// prover's choice order depends on store contents and insertion order, so
	// the worker replays the coordinator's store to precisely this point.
	Version int
}

// ProveReply carries one proof verdict back to the coordinator.
type ProveReply struct {
	// Strategy is the proved core strategy (nil unless Outcome is proved).
	Strategy *fol.Strategy
	// Outcome is the prover verdict.
	Outcome fol.Outcome
	// Panicked marks a proof that panicked remotely and was recovered; the
	// outcome is then unknown, exactly like a local recovered panic.
	Panicked bool
	// Worker and DurNanos are scheduling facts, as in ExecReply.
	Worker   int
	DurNanos int64
}

// SolveRequest asks for one satisfiability check of an ALT(pc) target
// (non-higher-order modes). Solver results do not depend on the sample store,
// so no version rides along.
type SolveRequest struct {
	// Alt is the sliced target formula.
	Alt sym.Expr
}

// SolveReply carries one solver verdict back to the coordinator.
type SolveReply struct {
	// Status is the solver verdict; Model is set when Status is sat.
	Status smt.Status
	Model  *smt.Model
	// Worker and DurNanos are scheduling facts, as in ExecReply.
	Worker   int
	DurNanos int64
}

// A Dispatcher computes search batches somewhere other than the local worker
// pool. Each call is synchronous: the searcher blocks until every unit of the
// batch has a reply (replies are positional — reply i answers request i), and
// the sample store is frozen for the duration. An error abandons the batch
// and stops the search with Stats.DispatchError set; a Dispatcher that wants
// the search to survive worker failures must mask them (retry, reassign, or
// compute locally) rather than surface them.
//
// Implementations must return results identical to local computation —
// executions of the same engine configuration, proofs against the same
// sample store version — or the determinism guarantee is void.
type Dispatcher interface {
	ExecBatch([]ExecRequest) ([]ExecReply, error)
	ProveBatch([]ProveRequest) ([]ProveReply, error)
	SolveBatch([]SolveRequest) ([]SolveReply, error)
}

// ShardOf returns the stable shard owning an input vector in an n-way
// partition: FNV-1a of the input's canonical binary key, mod n. Both the
// fleet coordinator (task affinity) and the frontier export helpers use it,
// so on-disk snapshots and live task routing agree on ownership.
func ShardOf(input []int64, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	io.WriteString(h, inputKey(input))
	return int(h.Sum32() % uint32(n))
}

// shardOfRec routes a serialized frontier item: pending continuations have no
// input of their own and are owned by their fallback input's shard.
func shardOfRec(rec itemRec, n int) int {
	input := rec.Input
	if len(input) == 0 && rec.Pending != nil {
		input = rec.Pending.Fallback
	}
	return ShardOf(input, n)
}

// ShardCount is the frontier depth one shard owns within a snapshot.
type ShardCount struct {
	Hot  int `json:"hot"`
	Cold int `json:"cold"`
}

// FrontierShardCounts splits the snapshot's frontier by input-key shard:
// entry i holds the hot/cold depths shard i owns under an n-way partition.
// The fleet coordinator publishes these as shard-balance gauges.
func (snap *Snapshot) FrontierShardCounts(n int) []ShardCount {
	if n < 1 {
		n = 1
	}
	out := make([]ShardCount, n)
	for _, rec := range snap.Hot {
		out[shardOfRec(rec, n)].Hot++
	}
	for _, rec := range snap.Cold {
		out[shardOfRec(rec, n)].Cold++
	}
	return out
}

// ExportFrontier returns a copy of the snapshot whose queues hold only the
// frontier items owned by shard (of an n-way partition), preserving queue
// order. This is the work-migration unit of the fleet protocol: a shard's
// pending frontier can be exported, shipped, and re-imported elsewhere
// without touching the rest of the coordinator state.
func (snap *Snapshot) ExportFrontier(shard, n int) *Snapshot {
	out := *snap
	out.Hot, out.Cold = nil, nil
	for _, rec := range snap.Hot {
		if shardOfRec(rec, n) == shard {
			out.Hot = append(out.Hot, rec)
		}
	}
	for _, rec := range snap.Cold {
		if shardOfRec(rec, n) == shard {
			out.Cold = append(out.Cold, rec)
		}
	}
	return &out
}

// ImportFrontier appends other's frontier items onto snap's queues — hot
// after hot, cold after cold — preserving both snapshots' internal order.
// Re-importing every shard of an n-way ExportFrontier split in shard order
// reassembles a frontier with the same multiset of items; dedup keys carried
// by the snapshot make any duplicates harmless on restore.
func (snap *Snapshot) ImportFrontier(other *Snapshot) {
	snap.Hot = append(snap.Hot, other.Hot...)
	snap.Cold = append(snap.Cold, other.Cold...)
}

// dispatchFail records the first dispatcher error and marks the session
// cancelled: everything merged so far stays valid, nothing after it is.
func (s *searcher) dispatchFail(err error) {
	if s.dispatchErr != nil {
		return
	}
	s.dispatchErr = err
	s.stats.DispatchError = err.Error()
	s.stats.Budget.Cancelled = true
	if s.tracing() {
		s.emit(obs.Event{Kind: "dispatch_fail", Worker: -1,
			Str: map[string]string{"err": err.Error()}})
	}
}

// clampWorker maps a remote worker id into the ProofsPerWorker range (remote
// ids are fleet-assigned and may exceed the local slot count).
func (s *searcher) clampWorker(w int) int {
	if w < 0 || w >= len(s.stats.ProofsPerWorker) {
		return 0
	}
	return w
}

// dispatchProofs discharges the cache-missing proofs of one fan-out through
// the dispatcher in a single batch, then walks degradable targets down the
// precision ladder locally, sequentially, in constraint order (the ladder
// depends on the parent input and its results are identical wherever it
// runs). It reports whether the fan-out completed; on dispatcher failure the
// undone targets are skipped by the apply loop and the search stops.
func (s *searcher) dispatchProofs(d Dispatcher, todo []*target, version int, fb map[int]int64) bool {
	var reqs []ProveRequest
	var idx []int
	for i, t := range todo {
		if !t.fromCache {
			reqs = append(reqs, ProveRequest{Alt: t.alt, Version: version})
			idx = append(idx, i)
		}
	}
	if len(reqs) > 0 {
		replies, err := d.ProveBatch(reqs)
		if err == nil && len(replies) != len(reqs) {
			err = fmt.Errorf("search: dispatcher returned %d of %d proof replies", len(replies), len(reqs))
		}
		if err != nil {
			s.dispatchFail(err)
			return false
		}
		for j, r := range replies {
			t := todo[idx[j]]
			t.strategy, t.outcome, t.panicked = r.Strategy, r.Outcome, r.Panicked
			t.worker = s.clampWorker(r.Worker)
			t.dur = time.Duration(r.DurNanos)
			atomic.AddInt64(&s.solveNanos, r.DurNanos)
			s.stats.ProofsPerWorker[t.worker]++
		}
	}
	for _, t := range todo {
		if s.shouldDegrade(t.outcome, t.panicked) {
			t0 := time.Now()
			s.degradeTarget(t, fb, t0)
			t.dur += time.Since(t0)
		}
		t.done = true
	}
	return true
}

// dispatchSolves is the satisfiability analogue of dispatchProofs: one batch,
// positional replies, failure abandons the fan-out.
func (s *searcher) dispatchSolves(d Dispatcher, todo []*target) bool {
	if len(todo) == 0 {
		return true
	}
	reqs := make([]SolveRequest, len(todo))
	for i, t := range todo {
		reqs[i] = SolveRequest{Alt: t.alt}
	}
	replies, err := d.SolveBatch(reqs)
	if err == nil && len(replies) != len(reqs) {
		err = fmt.Errorf("search: dispatcher returned %d of %d solver replies", len(replies), len(reqs))
	}
	if err != nil {
		s.dispatchFail(err)
		return false
	}
	for i, r := range replies {
		t := todo[i]
		t.status, t.model = r.Status, r.Model
		t.worker = s.clampWorker(r.Worker)
		t.dur = time.Duration(r.DurNanos)
		atomic.AddInt64(&s.solveNanos, r.DurNanos)
		s.stats.ProofsPerWorker[t.worker]++
		t.done = true
	}
	return true
}
