package search

import (
	"time"

	"hotg/internal/fol"
	"hotg/internal/smt"
	"hotg/internal/sym"
)

// Budget sets the search's resource ceilings and enables graceful
// degradation. The zero value reproduces the unbudgeted behavior exactly:
// unlimited wall clock, every target discharged at the engine's top rung.
//
// Budgets compose: a proof call runs until the earliest of its own
// ProofTimeout, its target's TargetTimeout, and the search's SearchTimeout
// (or external context) fires. See DESIGN.md §8 for the full semantics and
// the determinism caveats that come with wall-clock limits.
type Budget struct {
	// ProofTimeout is the wall-clock deadline applied to each individual
	// validity proof or satisfiability check (0 = none). A proof cut off by
	// it reports a timeout, which Degrade can turn into a lower-rung retry.
	ProofTimeout time.Duration
	// TargetTimeout caps the combined wall-clock time spent on all rungs of
	// one target — the initial proof plus every degradation retry (0 = none).
	TargetTimeout time.Duration
	// SearchTimeout is the wall-clock ceiling for the entire search
	// (0 = none). When it fires, all workers stop cooperatively and Run
	// returns partial Stats with Budget.TimedOut set.
	SearchTimeout time.Duration
	// Degrade retries targets whose higher-order validity proof timed out
	// (or was otherwise cut short) down the paper's precision ladder:
	// quantifier-free solving first, plain concretization last. Each
	// generated test records the rung that produced it (Stats.Budget).
	// Only meaningful in higher-order mode; the lower modes already operate
	// at the lower rungs.
	Degrade bool
}

// Active reports whether any ceiling or the degradation ladder is configured;
// an inactive Budget leaves the search bit-identical to an unbudgeted one.
func (b Budget) Active() bool {
	return b.ProofTimeout > 0 || b.TargetTimeout > 0 || b.SearchTimeout > 0 || b.Degrade
}

// Rung identifies the precision ladder rung that produced a test, mirroring
// the options of Section 5 of the paper in decreasing reasoning power.
type Rung int

const (
	// RungProof is the top rung — option (3): a constructive validity proof
	// of POST(pc) with uninterpreted functions. Sound and precise.
	RungProof Rung = iota
	// RungQF is the middle rung — option (2): sound-but-weak quantifier-free
	// reasoning. ALT(pc) is checked for satisfiability and the model is
	// accepted only if it holds under the real interpretation of the unknown
	// functions (an invented-function model is rejected, cf. §4.2).
	RungQF
	// RungConcretize is the bottom rung — option (1): unsound concretization.
	// Every uninterpreted application in ALT(pc) is replaced by its concrete
	// value under the parent input, DART-style; the residual formula is pure
	// arithmetic. Tests from this rung may diverge.
	RungConcretize
	// NumRungs is the number of ladder rungs.
	NumRungs
)

func (r Rung) String() string {
	switch r {
	case RungProof:
		return "proof"
	case RungQF:
		return "qf"
	case RungConcretize:
		return "concretize"
	default:
		return "rung?"
	}
}

// minDeadline returns the earliest non-zero time, or zero when all are zero.
func minDeadline(ts ...time.Time) time.Time {
	var out time.Time
	for _, t := range ts {
		if t.IsZero() {
			continue
		}
		if out.IsZero() || t.Before(out) {
			out = t
		}
	}
	return out
}

// proofDeadline computes the absolute cutoff for one proof/solve attempt of a
// target whose processing began at targetStart: the earliest of the per-proof
// timeout (from now), the per-target timeout (from targetStart), and the
// search-wide deadline. Zero means unlimited.
func (s *searcher) proofDeadline(targetStart time.Time) time.Time {
	b := s.opts.Budget
	var perProof, perTarget time.Time
	if b.ProofTimeout > 0 {
		perProof = time.Now().Add(b.ProofTimeout)
	}
	if b.TargetTimeout > 0 && !targetStart.IsZero() {
		perTarget = targetStart.Add(b.TargetTimeout)
	}
	return minDeadline(perProof, perTarget, s.deadline)
}

// shouldDegrade reports whether a target with this proof outcome should be
// retried on a lower rung: only when the ladder is enabled and the top rung
// was cut short (timeout, exhausted node budget, or a recovered panic) —
// never when it returned a sound verdict (proved or invalid).
func (s *searcher) shouldDegrade(outcome fol.Outcome, panicked bool) bool {
	if !s.opts.Budget.Degrade {
		return false
	}
	return panicked || outcome == fol.OutcomeTimeout || outcome == fol.OutcomeUnknown
}

// degradeTarget walks one target down the ladder after its validity proof was
// cut short. It runs on a worker goroutine: it reads only the frozen sample
// store, the engine's immutable tables, and the target itself (which no other
// goroutine touches until the coordinator applies results in order).
//
// Rung 2 (quantifier-free): decide satisfiability of ALT(pc) directly. An
// unsat verdict is decisive — no interpretation of the unknown functions
// admits the path — so the walk stops without a test. A sat model is accepted
// only if the formula actually holds under the ground-truth interpretation of
// the unknown functions; otherwise the model "invented" a function (§4.2) and
// the target falls through.
//
// Rung 1 (concretization): substitute every uninterpreted application by its
// concrete value under the parent input and solve the residual arithmetic.
// This mirrors DART's unsound concretization; a resulting test may diverge.
func (s *searcher) degradeTarget(t *target, fb map[int]int64, targetStart time.Time) {
	t.rung = RungQF
	t.status, t.model = smt.Solve(t.alt, smt.Options{
		Pool: s.eng.Pool, VarBounds: s.varBounds, Obs: s.obs,
		Ctx: s.ctx, Deadline: s.proofDeadline(targetStart),
	})
	if t.status == smt.StatusUnsat {
		return
	}
	if t.status == smt.StatusSat && s.qfModelSound(t.alt, fb, t.model) {
		return
	}
	t.rung = RungConcretize
	t.status, t.model = smt.Solve(s.concretizeAlt(t.alt, fb), smt.Options{
		Pool: s.eng.Pool, VarBounds: s.varBounds, Obs: s.obs,
		Ctx: s.ctx, Deadline: s.proofDeadline(targetStart),
	})
}

// qfModelSound checks a rung-2 model against the ground truth: the formula
// must hold when its variables take the model's values and every
// uninterpreted application is evaluated by the real native function. This is
// what makes the middle rung "sound but weak" (option (2)): models that
// invent a function interpretation are rejected rather than executed.
func (s *searcher) qfModelSound(alt sym.Expr, fb map[int]int64, model *smt.Model) bool {
	values := make(map[int]int64, len(fb)+len(model.Vars))
	for id, v := range fb {
		values[id] = v
	}
	for id, v := range model.Vars {
		values[id] = v
	}
	ok, err := sym.EvalBool(alt, sym.Env{
		Vars: values,
		Fn: func(f *sym.Func, args []int64) (int64, bool) {
			return s.eng.NativeEval(f.Name, args)
		},
	})
	return err == nil && ok
}

// concretizeAlt substitutes every uninterpreted application in alt by its
// concrete value under the parent input fb — preferring a recorded sample
// (exact by construction), falling back to evaluating the native function on
// the arguments' concrete values. Applications whose value cannot be
// determined (e.g. division faults) are left in place; the solver then treats
// them via Ackermann's reduction as usual. Rewriting is innermost-first, so
// outer applications see their arguments already concretized.
func (s *searcher) concretizeAlt(alt sym.Expr, fb map[int]int64) sym.Expr {
	return sym.RewriteApplies(alt, func(a *sym.Apply) (*sym.Sum, bool) {
		args := make([]int64, len(a.Args))
		for i, arg := range a.Args {
			v, ok := evalSumUnder(arg, fb)
			if !ok {
				return nil, false
			}
			args[i] = v
		}
		if out, ok := s.eng.Samples.Lookup(a.Fn, args); ok {
			return sym.Int(out), true
		}
		if out, ok := s.eng.NativeEval(a.Fn.Name, args); ok {
			return sym.Int(out), true
		}
		return nil, false
	})
}

// evalSumUnder evaluates a linear term under concrete variable values,
// failing on any atom that is not a valued variable (residual applications are the
// callers' problem — RewriteApplies visits them innermost-first, so a failed
// inner rewrite surfaces here as a non-variable atom).
func evalSumUnder(sum *sym.Sum, values map[int]int64) (int64, bool) {
	total := sum.Const
	for _, t := range sum.Terms {
		v, isVar := t.Atom.(*sym.Var)
		if !isVar {
			return 0, false
		}
		val, ok := values[v.ID]
		if !ok {
			return 0, false
		}
		total += t.Coef * val
	}
	return total, true
}
