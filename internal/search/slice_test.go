package search

import (
	"math/rand"
	"testing"

	"hotg/internal/concolic"
	"hotg/internal/lexapp"
	"hotg/internal/mini"
	"hotg/internal/smt"
	"hotg/internal/sym"
)

func TestSliceAltKeepsRelated(t *testing.T) {
	var p sym.Pool
	x, y, z := p.NewVar("x"), p.NewVar("y"), p.NewVar("z")
	prefix := []sym.Expr{
		sym.Eq(sym.VarTerm(x), sym.Int(1)),     // touches x
		sym.Eq(sym.VarTerm(z), sym.Int(9)),     // unrelated
		sym.Lt(sym.VarTerm(x), sym.VarTerm(y)), // links x↔y
	}
	negated := sym.Gt(sym.VarTerm(y), sym.Int(5)) // touches y
	sliced := sliceAlt(prefix, negated)
	cs := sym.Conjuncts(sliced)
	// Expect: x=1 and x<y retained (transitively via y), z=9 dropped.
	if len(cs) != 3 {
		t.Fatalf("sliced = %v", cs)
	}
	for _, c := range cs {
		for _, v := range sym.Vars(c) {
			if v == z {
				t.Fatalf("unrelated conjunct retained: %v", sliced)
			}
		}
	}
}

func TestSliceAltTransitiveClosure(t *testing.T) {
	var p sym.Pool
	a, b, c, d := p.NewVar("a"), p.NewVar("b"), p.NewVar("c"), p.NewVar("d")
	prefix := []sym.Expr{
		sym.Eq(sym.VarTerm(a), sym.VarTerm(b)),
		sym.Eq(sym.VarTerm(b), sym.VarTerm(c)),
		sym.Eq(sym.VarTerm(d), sym.Int(7)),
	}
	negated := sym.Ne(sym.VarTerm(a), sym.Int(0))
	cs := sym.Conjuncts(sliceAlt(prefix, negated))
	if len(cs) != 3 { // a=b, b=c chained in; d=7 out
		t.Fatalf("sliced = %v", cs)
	}
}

// TestSliceSoundnessProperty: on real executions, any model of the sliced
// alternate constraint, extended with the parent input for untouched
// variables, satisfies the full alternate constraint.
func TestSliceSoundnessProperty(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	ns := mini.Natives{}
	ns.Register("hash", 1, lexapp.ScrambledHash)
	for iter := 0; iter < 30; iter++ {
		src := mini.GenProgram(r, mini.GenConfig{Natives: []string{"hash"}})
		p := mini.MustCheck(mini.MustParse(src), ns)
		in := []int64{int64(r.Intn(21) - 10), int64(r.Intn(21) - 10), int64(r.Intn(21) - 10)}
		eng := concolic.New(p, concolic.ModeSound)
		ex := eng.Run(in)

		prefix := []sym.Expr{}
		for k, c := range ex.PC {
			if c.IsConcretization {
				prefix = append(prefix, c.Expr)
				continue
			}
			negated := sym.NotExpr(c.Expr)
			sliced := sliceAlt(prefix, negated)
			full := ex.Alt(k)
			st, m := smt.Solve(sliced, smt.Options{Pool: eng.Pool})
			if st == smt.StatusSat {
				env := sym.Env{Vars: map[int]int64{}}
				for i, v := range eng.InputVars {
					env.Vars[v.ID] = in[i]
					if val, ok := m.Vars[v.ID]; ok {
						env.Vars[v.ID] = val
					}
				}
				holds, err := sym.EvalBool(full, env)
				if err != nil || !holds {
					t.Fatalf("iter %d k=%d: sliced model does not satisfy full ALT\nsliced: %v\nfull: %v\nmodel: %v\nerr: %v",
						iter, k, sliced, full, env.Vars, err)
				}
			} else {
				// Slicing must not make unsatisfiable targets satisfiable or
				// vice versa: the full ALT must agree.
				stFull, _ := smt.Solve(full, smt.Options{Pool: eng.Pool})
				if stFull == smt.StatusSat {
					t.Fatalf("iter %d k=%d: full ALT sat but slice unsat", iter, k)
				}
			}
			prefix = append(prefix, c.Expr)
		}
	}
}

func TestTargetKeyDistinguishes(t *testing.T) {
	var p sym.Pool
	x := p.NewVar("x")
	c1 := sym.Eq(sym.VarTerm(x), sym.Int(1))
	c2 := sym.Eq(sym.VarTerm(x), sym.Int(2))
	tr1 := []mini.BranchEvent{{ID: 0, Taken: true}}
	tr2 := []mini.BranchEvent{{ID: 0, Taken: false}}
	tr3 := []mini.BranchEvent{{ID: 1, Taken: true}}
	if targetKey(tr1, c1) == targetKey(tr1, c2) {
		t.Fatal("different constraints must differ")
	}
	if targetKey(tr1, c1) == targetKey(tr2, c1) {
		t.Fatal("different polarities must differ")
	}
	if targetKey(tr1, c1) == targetKey(tr3, c1) {
		t.Fatal("different branch IDs must differ")
	}
	if targetKey(tr1, c1) != targetKey(tr1, c1) {
		t.Fatal("identical targets must collide")
	}
}

func TestExhaustedFlag(t *testing.T) {
	src := `fn main(x int) { if (x > 0) { error("pos"); } }`
	ns := mini.Natives{}
	ns.Register("hash", 1, lexapp.ScrambledHash)
	p := mini.MustCheck(mini.MustParse(src), ns)
	eng := concolic.New(p, concolic.ModeSound)
	st := Run(eng, Options{MaxRuns: 100, Seeds: [][]int64{{0}}})
	if !st.Exhausted {
		t.Fatalf("two-path program must exhaust: %s", st.Summary())
	}
	if st.Runs != 2 || st.Paths() != 2 {
		t.Fatalf("expected exactly 2 runs = 2 paths: %s", st.Summary())
	}
	// With a budget of 1 the search cannot exhaust.
	eng2 := concolic.New(p, concolic.ModeSound)
	st2 := Run(eng2, Options{MaxRuns: 1, Seeds: [][]int64{{0}}})
	if st2.Exhausted {
		t.Fatal("budget-limited search must not claim exhaustion")
	}
}
