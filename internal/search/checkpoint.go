package search

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"sort"

	"hotg/internal/concolic"
	"hotg/internal/fol"
	"hotg/internal/mini"
	"hotg/internal/obs"
	"hotg/internal/smt"
	"hotg/internal/sym"
)

// This file is the checkpoint/resume half of the campaign subsystem
// (internal/campaign): it serializes the complete coordinator state — sample
// store, proof cache, work queues (including multi-step continuations), dedup
// maps, and statistics — so that an interrupted search, restored into a fresh
// engine, continues bit-identically to the uninterrupted run. This extends the
// PR 1 determinism guarantee ("identical results at every worker count")
// across process boundaries: every value the coordinator's canonical apply
// loop can observe is either in the snapshot or reconstructed deterministically
// from it (the engine's input variables are allocated in a fixed order by
// concolic.New, and prover/solver-internal fresh variables never reach
// checkpointed state — strategies define only input variables, and smt models
// drop Ackermann witnesses). See DESIGN.md §9 for the format and the caveats.

// SnapshotFormatVersion is the checkpoint format this build reads and writes.
// Snapshots with a different version are rejected on restore — state formats
// evolve by bumping the version, never by silently reinterpreting old bytes.
const SnapshotFormatVersion = 1

// CheckpointOptions configures periodic coordinator-state snapshots.
type CheckpointOptions struct {
	// Every takes a snapshot at the first work-loop boundary at which at
	// least Every runs have been applied since the previous snapshot
	// (0 = no checkpointing). Boundaries fall between batches, so with N
	// workers the actual spacing may exceed Every by up to N-1 runs.
	Every int
	// Sink receives each snapshot, synchronously on the coordinator (write
	// it to durable storage and return). A sink error is recorded in
	// Stats.CheckpointError and disables further checkpointing for the rest
	// of the search; the search itself continues.
	Sink func(*Snapshot) error
}

// RunRecord describes one applied execution, delivered to Options.OnRun in
// canonical apply order. It carries exactly the metadata the campaign corpus
// persists per test input.
type RunRecord struct {
	// Run is the 1-based execution index (Stats.Runs after this run).
	Run int
	// Input is the executed input vector. Not copied: treat as read-only.
	Input []int64
	// Funcs are the run's function-valued inputs in canonical text, one per
	// function parameter of the program (nil for first-order programs).
	Funcs []string
	// Path is the branch trace of the execution ('0'/'1' per branch event).
	Path string
	// Gained is how many previously-uncovered branch sides this run covered.
	Gained int
	// Rung is the precision-ladder rung that generated the input
	// (meaningless when Seed or Intermediate is set).
	Rung Rung
	// Seed marks an initial seed input; Intermediate marks a multi-step
	// sample-collection run.
	Seed         bool
	Intermediate bool
	// Diverged reports that the run left its predicted path.
	Diverged bool
	// Bugs lists the defects first recorded by this run (already
	// deduplicated by site/message within the session).
	Bugs []Bug
}

// Snapshot is the serializable coordinator state of a search at a work-loop
// boundary. It is pure data (JSON-marshalable), produced by the checkpoint
// sink and accepted by Options.Restore. Snapshots share slices with the live
// search: serialize or discard them, do not mutate.
type Snapshot struct {
	FormatVersion int `json:"format_version"`
	// Mode, Branches, and Inputs identify the engine configuration the
	// snapshot came from; restore rejects mismatches.
	Mode     string `json:"mode"`
	Branches int    `json:"branches"`
	Inputs   int    `json:"inputs"`
	// MaxRuns is the session's execution budget, recorded so a resuming
	// caller can reproduce the uninterrupted trajectory exactly.
	MaxRuns int `json:"max_runs"`
	// Runs duplicates Stats.Runs for cheap inspection without decoding.
	Runs  int      `json:"runs"`
	Stats statsRec `json:"stats"`
	// Samples is the sample store in the sym.Encode format (insertion order
	// preserved — the order steers prover choice and must survive).
	Samples json.RawMessage `json:"samples,omitempty"`
	// Hot and Cold are the two work queues, in order.
	Hot  []itemRec `json:"hot,omitempty"`
	Cold []itemRec `json:"cold,omitempty"`
	// Tried and Targeted are the dedup sets, base64-encoded (the keys are
	// compact binary encodings, not UTF-8) and sorted for stable bytes.
	Tried    []string `json:"tried,omitempty"`
	Targeted []string `json:"targeted,omitempty"`
	// Prove and Solve are the proof cache, sorted by key.
	Prove []proveRec `json:"prove,omitempty"`
	Solve []solveRec `json:"solve,omitempty"`
}

// statsRec is the serialized, deterministic form of Stats: every
// scheduling-independent field, with the unexported maps flattened to sorted
// slices. Timing and per-worker figures are deliberately absent — they are
// scheduling facts, not search state.
type statsRec struct {
	Mode              string `json:"mode"`
	Runs              int    `json:"runs"`
	TestsGenerated    int    `json:"tests_generated"`
	IntermediateTests int    `json:"intermediate_tests,omitempty"`
	Divergences       int    `json:"divergences,omitempty"`
	SolverCalls       int    `json:"solver_calls,omitempty"`
	SolverSat         int    `json:"solver_sat,omitempty"`
	ProverCalls       int    `json:"prover_calls,omitempty"`
	ProverProved      int    `json:"prover_proved,omitempty"`
	ProverInvalid     int    `json:"prover_invalid,omitempty"`
	ProverUnknown     int    `json:"prover_unknown,omitempty"`
	MultiStepChains   int    `json:"multistep_chains,omitempty"`
	CallbackTargets   int    `json:"callback_targets,omitempty"`
	FuncsSynthesized  int    `json:"funcs_synthesized,omitempty"`
	ProofCacheHits    int    `json:"proof_cache_hits,omitempty"`
	ProofCacheMisses  int    `json:"proof_cache_misses,omitempty"`
	// Checkpoints counts snapshots taken, cumulatively across resumed
	// sessions (the snapshot being written counts itself).
	Checkpoints int             `json:"checkpoints,omitempty"`
	Budget      BudgetStats     `json:"budget"`
	Incomplete  bool            `json:"incomplete,omitempty"`
	Exhausted   bool            `json:"exhausted,omitempty"`
	BranchCov   map[int][2]bool `json:"branch_cov"`
	Bugs        []Bug           `json:"bugs,omitempty"`
	BugSeen     []string        `json:"bug_seen,omitempty"`
	Paths       []string        `json:"paths,omitempty"`
	CovTrace    []int           `json:"cov_trace,omitempty"`
}

// itemRec is the serialized form of one work-queue item. Funcs holds the
// function-valued inputs in canonical text, one per function parameter ("" =
// the default function); absent for first-order programs, so their snapshots
// are byte-identical to earlier builds.
type itemRec struct {
	Input    []int64            `json:"input"`
	Funcs    []string           `json:"funcs,omitempty"`
	Expected []mini.BranchEvent `json:"expected,omitempty"`
	Bound    int                `json:"bound,omitempty"`
	Rung     int                `json:"rung,omitempty"`
	NoExpand bool               `json:"no_expand,omitempty"`
	Pending  *pendingRec        `json:"pending,omitempty"`
}

// pendingRec is the serialized form of a multi-step continuation.
type pendingRec struct {
	Strategy *fol.StrategyRec   `json:"strategy"`
	Alt      *sym.ExprRec       `json:"alt"`
	Expected []mini.BranchEvent `json:"expected,omitempty"`
	Fallback []int64            `json:"fallback"`
	Funcs    []string           `json:"funcs,omitempty"`
	Bound    int                `json:"bound"`
	Retries  int                `json:"retries"`
	Hot      bool               `json:"hot,omitempty"`
}

// proveRec is one higher-order proof-cache entry.
type proveRec struct {
	Key      string           `json:"key"`
	Outcome  string           `json:"outcome"`
	Strategy *fol.StrategyRec `json:"strategy,omitempty"`
}

// solveRec is one satisfiability-cache entry.
type solveRec struct {
	Key    string     `json:"key"`
	Status string     `json:"status"`
	Model  *smt.Model `json:"model,omitempty"`
}

// encodeRec flattens the statistics into their serialized form.
func (s *Stats) encodeRec() statsRec {
	rec := statsRec{
		Mode:              s.Mode,
		Runs:              s.Runs,
		TestsGenerated:    s.TestsGenerated,
		IntermediateTests: s.IntermediateTests,
		Divergences:       s.Divergences,
		SolverCalls:       s.SolverCalls,
		SolverSat:         s.SolverSat,
		ProverCalls:       s.ProverCalls,
		ProverProved:      s.ProverProved,
		ProverInvalid:     s.ProverInvalid,
		ProverUnknown:     s.ProverUnknown,
		MultiStepChains:   s.MultiStepChains,
		CallbackTargets:   s.CallbackTargets,
		FuncsSynthesized:  s.FuncsSynthesized,
		ProofCacheHits:    s.ProofCacheHits,
		ProofCacheMisses:  s.ProofCacheMisses,
		Checkpoints:       s.Checkpoints,
		Budget:            s.Budget,
		Incomplete:        s.Incomplete,
		Exhausted:         s.Exhausted,
		Bugs:              s.Bugs,
		CovTrace:          s.CovTrace,
		BranchCov:         make(map[int][2]bool, len(s.branchCov)),
		BugSeen:           sortedKeys(s.bugSeen),
		Paths:             sortedKeys(s.paths),
	}
	for id, c := range s.branchCov {
		rec.BranchCov[id] = *c
	}
	return rec
}

// applyRec loads a serialized record into the statistics, replacing the
// search-state fields and leaving session-local scheduling fields (Workers,
// ProofsPerWorker, WallTime, SolveTime) and the current session's budget
// configuration untouched.
func (s *Stats) applyRec(rec statsRec) {
	configured := s.Budget.Configured
	s.Mode = rec.Mode
	s.Runs = rec.Runs
	s.TestsGenerated = rec.TestsGenerated
	s.IntermediateTests = rec.IntermediateTests
	s.Divergences = rec.Divergences
	s.SolverCalls = rec.SolverCalls
	s.SolverSat = rec.SolverSat
	s.ProverCalls = rec.ProverCalls
	s.ProverProved = rec.ProverProved
	s.ProverInvalid = rec.ProverInvalid
	s.ProverUnknown = rec.ProverUnknown
	s.MultiStepChains = rec.MultiStepChains
	s.CallbackTargets = rec.CallbackTargets
	s.FuncsSynthesized = rec.FuncsSynthesized
	s.ProofCacheHits = rec.ProofCacheHits
	s.ProofCacheMisses = rec.ProofCacheMisses
	s.Checkpoints = rec.Checkpoints
	s.Budget = rec.Budget
	s.Budget.Configured = configured
	s.Incomplete = rec.Incomplete
	s.Exhausted = rec.Exhausted
	s.Bugs = rec.Bugs
	s.CovTrace = rec.CovTrace
	s.branchCov = make(map[int]*[2]bool, len(rec.BranchCov))
	for id, c := range rec.BranchCov {
		cc := c
		s.branchCov[id] = &cc
	}
	s.bugSeen = make(map[string]bool, len(rec.BugSeen))
	for _, k := range rec.BugSeen {
		s.bugSeen[k] = true
	}
	s.paths = make(map[string]bool, len(rec.Paths))
	for _, k := range rec.Paths {
		s.paths[k] = true
	}
}

// Canonical returns a deterministic JSON rendering of the
// scheduling-independent statistics: everything the determinism guarantee
// covers (runs, tests, per-rung counts, coverage, bugs, paths, the coverage
// trace) and nothing it does not (timing, worker figures).
// Two searches explored the same trajectory iff their Canonical bytes match.
//
// Checkpoint counts are excluded: checkpoints fire at batch boundaries, whose
// positions depend on the worker count, so the cumulative count is session
// bookkeeping rather than trajectory (and an interrupted run that resumes
// without a sink configured would otherwise never match).
//
// Proof-cache hit/miss counts are likewise excluded: with Options.CacheCap
// an evicted obligation is re-proved — deterministically, to the same
// outcome — so cache traffic is a resource-configuration fact (like the
// worker count), not trajectory. Capped and uncapped searches over the same
// program therefore canonicalize identically; snapshots still record the
// raw counts.
func (s *Stats) Canonical() ([]byte, error) {
	rec := s.encodeRec()
	rec.Checkpoints = 0
	rec.ProofCacheHits, rec.ProofCacheMisses = 0, 0
	return json.Marshal(rec)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// encodeBinKeys serializes a binary-keyed dedup set as sorted base64 strings.
func encodeBinKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, base64.StdEncoding.EncodeToString([]byte(k)))
	}
	sort.Strings(out)
	return out
}

func decodeBinKeys(keys []string) (map[string]bool, error) {
	m := make(map[string]bool, len(keys))
	for _, k := range keys {
		raw, err := base64.StdEncoding.DecodeString(k)
		if err != nil {
			return nil, fmt.Errorf("search: bad dedup key %q: %w", k, err)
		}
		m[string(raw)] = true
	}
	return m, nil
}

// encodeFuncVals renders function inputs for a snapshot: one canonical string
// per entry, "" preserving nil entries exactly. A nil slice stays nil (the
// field is omitted for first-order programs).
func encodeFuncVals(funcs []*mini.FuncValue) []string {
	if funcs == nil {
		return nil
	}
	out := make([]string, len(funcs))
	for i, fv := range funcs {
		if fv != nil {
			out[i] = fv.String()
		}
	}
	return out
}

// decodeFuncVals inverts encodeFuncVals.
func decodeFuncVals(texts []string) ([]*mini.FuncValue, error) {
	if texts == nil {
		return nil, nil
	}
	out := make([]*mini.FuncValue, len(texts))
	for i, t := range texts {
		if t == "" {
			continue
		}
		fv, err := mini.ParseFuncValue(t)
		if err != nil {
			return nil, fmt.Errorf("search: function input %d: %w", i, err)
		}
		out[i] = fv
	}
	return out, nil
}

func encodeItem(it item) (itemRec, error) {
	rec := itemRec{
		Input:    it.input,
		Funcs:    encodeFuncVals(it.funcs),
		Expected: it.expected,
		Bound:    it.bound,
		Rung:     int(it.rung),
		NoExpand: it.noExpand,
	}
	if pt := it.pending; pt != nil {
		strat, err := fol.EncodeStrategy(pt.strategy)
		if err != nil {
			return rec, err
		}
		alt, err := sym.EncodeExpr(pt.alt)
		if err != nil {
			return rec, err
		}
		rec.Pending = &pendingRec{
			Strategy: strat, Alt: alt, Expected: pt.expected,
			Fallback: pt.fallback, Funcs: encodeFuncVals(pt.funcs),
			Bound: pt.bound, Retries: pt.retries, Hot: pt.hot,
		}
	}
	return rec, nil
}

func decodeItem(rec itemRec, res *sym.Resolver) (item, error) {
	if rec.Rung < 0 || rec.Rung >= int(NumRungs) {
		return item{}, fmt.Errorf("search: item rung %d out of range", rec.Rung)
	}
	funcs, err := decodeFuncVals(rec.Funcs)
	if err != nil {
		return item{}, err
	}
	it := item{
		input:    rec.Input,
		funcs:    funcs,
		expected: rec.Expected,
		bound:    rec.Bound,
		rung:     Rung(rec.Rung),
		noExpand: rec.NoExpand,
	}
	if p := rec.Pending; p != nil {
		strat, err := fol.DecodeStrategy(p.Strategy, res)
		if err != nil {
			return item{}, err
		}
		if strat == nil {
			return item{}, fmt.Errorf("search: pending continuation has no strategy")
		}
		alt, err := sym.DecodeExpr(p.Alt, res)
		if err != nil {
			return item{}, err
		}
		pfuncs, err := decodeFuncVals(p.Funcs)
		if err != nil {
			return item{}, err
		}
		it.pending = &pendingTarget{
			strategy: strat, alt: alt, expected: p.Expected,
			fallback: p.Fallback, funcs: pfuncs,
			bound: p.Bound, retries: p.Retries, hot: p.Hot,
		}
	}
	return it, nil
}

func encodeItems(items []item) ([]itemRec, error) {
	out := make([]itemRec, 0, len(items))
	for _, it := range items {
		rec, err := encodeItem(it)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

func decodeItems(recs []itemRec, res *sym.Resolver) ([]item, error) {
	var out []item
	for i, rec := range recs {
		it, err := decodeItem(rec, res)
		if err != nil {
			return nil, fmt.Errorf("search: queue item %d: %w", i, err)
		}
		out = append(out, it)
	}
	return out, nil
}

// snapshot serializes the full coordinator state at a work-loop boundary.
func (s *searcher) snapshot() (*Snapshot, error) {
	snap := &Snapshot{
		FormatVersion: SnapshotFormatVersion,
		Mode:          s.eng.Mode.String(),
		Branches:      s.eng.Prog.NumBranches,
		Inputs:        len(s.eng.InputVars),
		MaxRuns:       s.opts.MaxRuns,
		Runs:          s.stats.Runs,
		Stats:         s.stats.encodeRec(),
		Tried:         encodeBinKeys(s.tried),
		Targeted:      encodeBinKeys(s.targeted),
	}
	if s.eng.Samples.Len() > 0 {
		var buf bytes.Buffer
		if err := s.eng.Samples.Encode(&buf); err != nil {
			return nil, err
		}
		snap.Samples = json.RawMessage(bytes.TrimSpace(buf.Bytes()))
	}
	var err error
	if snap.Hot, err = encodeItems(s.hot); err != nil {
		return nil, err
	}
	if snap.Cold, err = encodeItems(s.cold); err != nil {
		return nil, err
	}
	proveKeys := make([]string, 0, len(s.cache.prove))
	for k := range s.cache.prove {
		proveKeys = append(proveKeys, k)
	}
	sort.Strings(proveKeys)
	for _, k := range proveKeys {
		e := s.cache.prove[k]
		strat, err := fol.EncodeStrategy(e.strategy)
		if err != nil {
			return nil, err
		}
		snap.Prove = append(snap.Prove, proveRec{Key: k, Outcome: e.outcome.String(), Strategy: strat})
	}
	solveKeys := make([]string, 0, len(s.cache.solve))
	for k := range s.cache.solve {
		solveKeys = append(solveKeys, k)
	}
	sort.Strings(solveKeys)
	for _, k := range solveKeys {
		e := s.cache.solve[k]
		snap.Solve = append(snap.Solve, solveRec{Key: k, Status: e.status.String(), Model: e.model})
	}
	return snap, nil
}

// restoreSnapshot loads a snapshot into a freshly constructed searcher. The
// engine must be fresh (empty sample store): restore rebuilds the store in the
// recorded insertion order, and a pre-populated store would reorder it.
func (s *searcher) restoreSnapshot(snap *Snapshot) error {
	if snap.FormatVersion != SnapshotFormatVersion {
		return fmt.Errorf("search: snapshot has format version %d; this build reads version %d",
			snap.FormatVersion, SnapshotFormatVersion)
	}
	if snap.Mode != s.eng.Mode.String() {
		return fmt.Errorf("search: snapshot was taken in mode %q, engine runs %q", snap.Mode, s.eng.Mode)
	}
	if snap.Branches != s.eng.Prog.NumBranches || snap.Inputs != len(s.eng.InputVars) {
		return fmt.Errorf("search: snapshot program shape (%d branches, %d inputs) does not match engine (%d branches, %d inputs)",
			snap.Branches, snap.Inputs, s.eng.Prog.NumBranches, len(s.eng.InputVars))
	}
	if s.eng.Samples.Len() != 0 {
		return fmt.Errorf("search: resume requires a fresh engine; sample store already holds %d entries", s.eng.Samples.Len())
	}
	if len(snap.Samples) > 0 {
		if _, err := sym.DecodeSamples(bytes.NewReader(snap.Samples), s.eng.Samples, s.eng.Pool); err != nil {
			return err
		}
	}
	res := sym.NewResolver(s.eng.Pool, s.eng.InputVars)
	s.stats.applyRec(snap.Stats)
	var err error
	if s.hot, err = decodeItems(snap.Hot, res); err != nil {
		return err
	}
	if s.cold, err = decodeItems(snap.Cold, res); err != nil {
		return err
	}
	if s.tried, err = decodeBinKeys(snap.Tried); err != nil {
		return err
	}
	if s.targeted, err = decodeBinKeys(snap.Targeted); err != nil {
		return err
	}
	for _, rec := range snap.Prove {
		outcome, ok := fol.ParseOutcome(rec.Outcome)
		if !ok {
			return fmt.Errorf("search: prove cache entry %q has unknown outcome %q", rec.Key, rec.Outcome)
		}
		strat, err := fol.DecodeStrategy(rec.Strategy, res)
		if err != nil {
			return fmt.Errorf("search: prove cache entry %q: %w", rec.Key, err)
		}
		s.cache.putProve(rec.Key, proveEntry{strategy: strat, outcome: outcome})
	}
	for _, rec := range snap.Solve {
		status, ok := smt.ParseStatus(rec.Status)
		if !ok {
			return fmt.Errorf("search: solve cache entry %q has unknown status %q", rec.Key, rec.Status)
		}
		s.cache.putSolve(rec.Key, solveEntry{status: status, model: rec.Model})
	}
	s.lastCkpt = s.stats.Runs
	return nil
}

// Validate checks that the snapshot can be restored against an engine for the
// same program and mode, by performing a full trial restore into a throwaway
// searcher (using a scratch sample store, so the engine is untouched). Callers
// that cannot afford a mid-run panic — the CLI, the campaign runner — validate
// before passing the snapshot to Run via Options.Restore.
func (snap *Snapshot) Validate(eng *concolic.Engine) error {
	trial := &searcher{
		eng:   eng.Clone(sym.NewSampleStore()),
		stats: newStats(eng.Mode.String(), eng.Prog.NumBranches),
		cache: newProofCache(0),
	}
	return trial.restoreSnapshot(snap)
}

// maybeCheckpoint snapshots the coordinator state when the configured cadence
// has elapsed. It runs at work-loop boundaries only (between batches), where
// the state is exactly what a sequential search would hold after the same
// runs, so every snapshot is a canonical resume point.
func (s *searcher) maybeCheckpoint() {
	co := s.opts.Checkpoint
	if co.Every <= 0 || co.Sink == nil || s.ckptFailed {
		return
	}
	if s.stats.Runs-s.lastCkpt < co.Every {
		return
	}
	s.lastCkpt = s.stats.Runs
	// Count the checkpoint before building the snapshot so the snapshot
	// includes itself: a session resumed from it then reports the same
	// cumulative Checkpoints as the uninterrupted run.
	s.stats.Checkpoints++
	snap, err := s.snapshot()
	if err == nil {
		err = co.Sink(snap)
	}
	if err != nil {
		s.stats.Checkpoints--
		s.stats.CheckpointError = err.Error()
		s.ckptFailed = true
		if s.tracing() {
			s.emit(obs.Event{Kind: "checkpoint_error", Worker: -1,
				Str: map[string]string{"err": err.Error()}})
		}
		return
	}
	if s.obs.Enabled() {
		s.obs.Counter("search.checkpoints").Inc()
	}
	if s.tracing() {
		// Checkpoint events are deterministic in content but not in position
		// across worker counts: batches advance Runs by up to Workers, so the
		// cadence crosses its threshold at slightly different run indices.
		// Stream comparisons across worker counts filter them out (they are
		// boundary markers, not search events); see DESIGN.md §9.
		s.emit(obs.Event{Kind: "checkpoint", Worker: -1,
			Num: map[string]int64{
				"runs": int64(s.stats.Runs), "tests": int64(s.stats.TestsGenerated),
				"samples":  int64(s.eng.Samples.Len()),
				"frontier": int64(len(s.hot) + len(s.cold)),
				"cache":    int64(len(s.cache.prove) + len(s.cache.solve)),
				"seq":      int64(s.stats.Checkpoints),
			}})
		// Flush the trace at every durable boundary, after the checkpoint
		// event itself: if the process dies without Close (kill -9), the
		// on-disk JSONL keeps a valid prefix through the last checkpoint.
		_ = s.obs.Trace.Flush()
	}
}
