package search_test

import (
	"math/rand"
	"testing"

	"hotg/internal/concolic"
	"hotg/internal/fuzz"
	"hotg/internal/mini"
	"hotg/internal/search"
)

func testHash(a []int64) int64 {
	x := uint64(a[0]) * 2654435761
	x ^= x >> 13
	x *= 2246822519
	x ^= x >> 16
	return int64(x % 1000)
}

func natives() mini.Natives {
	ns := mini.Natives{}
	ns.Register("hash", 1, testHash)
	return ns
}

func prog(t testing.TB, src string) *mini.Program {
	t.Helper()
	p, err := mini.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := mini.Check(p, natives()); err != nil {
		t.Fatalf("check: %v", err)
	}
	return p
}

const obscureSrc = `
fn main(x int, y int) int {
	if (x == hash(y)) {
		error("obscure");
	}
	return 0;
}`

const fooSrc = `
fn main(x int, y int) {
	if (x == hash(y)) {
		if (y == 10) {
			error("deep");
		}
	}
}`

const fooBisSrc = `
fn main(x int, y int) {
	if (x != hash(y)) {
		if (y == 10) {
			error("deep");
		}
	}
}`

const barSrc = `
fn main(x int, y int) {
	if (x == hash(y) && y == hash(x)) {
		error("cycle");
	}
}`

func searchMode(t *testing.T, src string, mode concolic.Mode, seeds [][]int64, maxRuns int) *search.Stats {
	t.Helper()
	p := prog(t, src)
	eng := concolic.New(p, mode)
	return search.Run(eng, search.Options{MaxRuns: maxRuns, Seeds: seeds})
}

// TestObscure reproduces the introduction (E1): static test generation is
// helpless; every dynamic variant covers the error branch.
func TestObscure(t *testing.T) {
	seeds := [][]int64{{33, 42}}

	st := searchMode(t, obscureSrc, concolic.ModeStatic, seeds, 50)
	if len(st.ErrorSitesFound()) != 0 {
		t.Fatalf("static should be helpless, got %v", st.Bugs)
	}
	if !st.Incomplete {
		t.Fatal("static search should be flagged incomplete")
	}

	for _, mode := range []concolic.Mode{concolic.ModeUnsound, concolic.ModeSound, concolic.ModeHigherOrder} {
		st := searchMode(t, obscureSrc, mode, seeds, 50)
		if len(st.ErrorSitesFound()) != 1 {
			t.Fatalf("%v should find the bug, got %+v", mode, st.Summary())
		}
		if st.Runs > 3 {
			t.Fatalf("%v needed %d runs, want ≤ 3", mode, st.Runs)
		}
	}
}

// TestFooDivergence reproduces Section 3.2 (E2): unsound concretization
// diverges on foo; sound concretization does not (E3) but cannot reach the
// deep error either; higher-order generation reaches it via a two-step
// sequence (E9) with no divergence.
func TestFooDivergence(t *testing.T) {
	h42 := testHash([]int64{42})
	seeds := [][]int64{{h42, 42}}

	un := searchMode(t, fooSrc, concolic.ModeUnsound, seeds, 50)
	if un.Divergences == 0 {
		t.Fatalf("unsound mode should diverge: %s", un.Summary())
	}

	so := searchMode(t, fooSrc, concolic.ModeSound, seeds, 50)
	if so.Divergences != 0 {
		t.Fatalf("sound mode must not diverge: %s", so.Summary())
	}
	if len(so.ErrorSitesFound()) != 0 {
		t.Fatalf("sound mode should miss the deep bug: %s", so.Summary())
	}

	ho := searchMode(t, fooSrc, concolic.ModeHigherOrder, seeds, 50)
	if len(ho.ErrorSitesFound()) != 1 {
		t.Fatalf("higher-order should reach the deep bug: %s", ho.Summary())
	}
	if ho.Divergences != 0 {
		t.Fatalf("higher-order must not diverge: %s", ho.Summary())
	}
	if ho.MultiStepChains == 0 {
		t.Fatalf("expected a multi-step chain: %s", ho.Summary())
	}
}

// TestFooBisGoodDivergence reproduces Example 2 (E4): on foo-bis, sound
// concretization misses the bug while unsound concretization finds it through
// a "good divergence"; higher-order generation also finds it.
func TestFooBisGoodDivergence(t *testing.T) {
	seeds := [][]int64{{33, 42}}

	so := searchMode(t, fooBisSrc, concolic.ModeSound, seeds, 50)
	if len(so.ErrorSitesFound()) != 0 {
		t.Fatalf("sound mode should miss the bug: %s", so.Summary())
	}

	un := searchMode(t, fooBisSrc, concolic.ModeUnsound, seeds, 50)
	if len(un.ErrorSitesFound()) != 1 {
		t.Fatalf("unsound mode should find the bug: %s", un.Summary())
	}

	ho := searchMode(t, fooBisSrc, concolic.ModeHigherOrder, seeds, 50)
	if len(ho.ErrorSitesFound()) != 1 {
		t.Fatalf("higher-order should find the bug: %s", ho.Summary())
	}
	if ho.Divergences != 0 {
		t.Fatalf("higher-order must not diverge: %s", ho.Summary())
	}
}

// TestBarIncomparable reproduces Example 3 (E5): on bar, unsound
// concretization generates a divergent test, while higher-order generation
// proves the alternate constraint invalid and generates nothing bogus.
func TestBarIncomparable(t *testing.T) {
	seeds := [][]int64{{33, 42}}

	un := searchMode(t, barSrc, concolic.ModeUnsound, seeds, 50)
	if un.Divergences == 0 {
		t.Fatalf("unsound mode should diverge on bar: %s", un.Summary())
	}

	p := prog(t, barSrc)
	eng := concolic.New(p, concolic.ModeHigherOrder)
	ho := search.Run(eng, search.Options{MaxRuns: 50, Seeds: seeds, Refute: true})
	if ho.Divergences != 0 {
		t.Fatalf("higher-order must not diverge: %s", ho.Summary())
	}
	if ho.ProverInvalid == 0 {
		t.Fatalf("expected an invalidity verdict: %s", ho.Summary())
	}
	if len(ho.ErrorSitesFound()) != 0 {
		t.Fatalf("the cycle x=h(y) ∧ y=h(x) should stay unreached: %s", ho.Summary())
	}
}

// TestKStepGeneration generalizes Example 7: a chain of k nested hash guards
// requires a k-step sequence of intermediate tests.
func TestKStepGeneration(t *testing.T) {
	src := `
fn main(x int, y int, z int) {
	if (x == hash(y)) {
		if (y == hash(z)) {
			if (z == 7) {
				error("deep3");
			}
		}
	}
}`
	p := prog(t, src)
	eng := concolic.New(p, concolic.ModeHigherOrder)
	st := search.Run(eng, search.Options{MaxRuns: 200, Seeds: [][]int64{{1, 2, 3}}, MaxMultiStep: 4})
	if len(st.ErrorSitesFound()) != 1 {
		t.Fatalf("3-level nest not cracked: %s", st.Summary())
	}
	if st.Divergences != 0 {
		t.Fatalf("must not diverge: %s", st.Summary())
	}
}

// TestSoundAndHigherOrderNeverDiverge is the search-level Theorem 2/3
// property test: on random programs, the sound modes and higher-order mode
// never produce divergent tests.
func TestSoundAndHigherOrderNeverDiverge(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for iter := 0; iter < 25; iter++ {
		src := mini.GenProgram(r, mini.GenConfig{Natives: []string{"hash"}})
		p, err := mini.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := mini.Check(p, natives()); err != nil {
			t.Fatal(err)
		}
		seeds := [][]int64{{int64(r.Intn(21) - 10), int64(r.Intn(21) - 10), int64(r.Intn(21) - 10)}}
		for _, mode := range []concolic.Mode{concolic.ModeSound, concolic.ModeSoundDelayed, concolic.ModeHigherOrder} {
			eng := concolic.New(p, mode)
			st := search.Run(eng, search.Options{MaxRuns: 30, Seeds: seeds})
			if st.Divergences != 0 {
				t.Fatalf("iter %d mode %v: %d divergences\n%s", iter, mode, st.Divergences, src)
			}
		}
	}
}

// TestCoverageOrdering checks the expected qualitative ordering on random
// programs with unknown functions: higher-order coverage ≥ sound coverage,
// and (total over the suite) higher-order ≥ static.
func TestCoverageOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	var hoTotal, soundTotal, staticTotal int
	for iter := 0; iter < 20; iter++ {
		src := mini.GenProgram(r, mini.GenConfig{Natives: []string{"hash"}})
		p, err := mini.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := mini.Check(p, natives()); err != nil {
			t.Fatal(err)
		}
		seeds := [][]int64{{int64(r.Intn(21) - 10), int64(r.Intn(21) - 10), int64(r.Intn(21) - 10)}}
		run := func(mode concolic.Mode) int {
			eng := concolic.New(p, mode)
			return search.Run(eng, search.Options{MaxRuns: 40, Seeds: seeds}).BranchSidesCovered()
		}
		hoTotal += run(concolic.ModeHigherOrder)
		soundTotal += run(concolic.ModeSound)
		staticTotal += run(concolic.ModeStatic)
	}
	if hoTotal < soundTotal {
		t.Fatalf("higher-order total coverage %d < sound %d", hoTotal, soundTotal)
	}
	if hoTotal < staticTotal {
		t.Fatalf("higher-order total coverage %d < static %d", hoTotal, staticTotal)
	}
}

// TestStopAtFirstBug checks early exit.
func TestStopAtFirstBug(t *testing.T) {
	st := searchMode(t, obscureSrc, concolic.ModeUnsound, [][]int64{{33, 42}}, 50)
	full := st.Runs
	p := prog(t, obscureSrc)
	eng := concolic.New(p, concolic.ModeUnsound)
	early := search.Run(eng, search.Options{MaxRuns: 50, Seeds: [][]int64{{33, 42}}, StopAtFirstBug: true})
	if len(early.ErrorSitesFound()) != 1 {
		t.Fatalf("early: %s", early.Summary())
	}
	if early.Runs > full {
		t.Fatalf("early stop ran more (%d) than full (%d)", early.Runs, full)
	}
}

// TestFuzzBaseline sanity-checks the blackbox baseline and the Section 1
// claim it cannot crack a hash equality in any reasonable budget.
func TestFuzzBaseline(t *testing.T) {
	p := prog(t, obscureSrc)
	st := fuzz.Run(p, fuzz.Options{MaxRuns: 500, Rand: rand.New(rand.NewSource(5))})
	if st.Runs != 500 {
		t.Fatalf("runs = %d", st.Runs)
	}
	if len(st.ErrorSitesFound()) != 0 {
		t.Fatalf("random fuzzing cracked a hash with 500 runs (domain 10^4+): %s", st.Summary())
	}
	if st.Mode != "blackbox-random" {
		t.Fatalf("mode = %s", st.Mode)
	}
	// Sanity: on a trivial guard the fuzzer does find bugs.
	pEasy := prog(t, `fn main(x int) { if (x > 0) { error("easy"); } }`)
	stEasy := fuzz.Run(pEasy, fuzz.Options{MaxRuns: 100, Rand: rand.New(rand.NewSource(6))})
	if len(stEasy.ErrorSitesFound()) != 1 {
		t.Fatalf("fuzzer missed trivial bug: %s", stEasy.Summary())
	}
}

// TestRuntimeFaultReported checks fault bugs are deduplicated and recorded.
func TestRuntimeFaultReported(t *testing.T) {
	src := `
fn main(x int) int {
	if (x > 5) {
		var a [3];
		return a[x];
	}
	return 0;
}`
	p := prog(t, src)
	eng := concolic.New(p, concolic.ModeSound)
	st := search.Run(eng, search.Options{MaxRuns: 20, Seeds: [][]int64{{0}}})
	found := false
	for _, b := range st.Bugs {
		if b.Kind == mini.StopRuntime {
			found = true
		}
	}
	if !found {
		t.Fatalf("out-of-bounds fault not found: %s", st.Summary())
	}
}

func TestStatsSummaryAndCoverage(t *testing.T) {
	st := searchMode(t, obscureSrc, concolic.ModeHigherOrder, [][]int64{{33, 42}}, 50)
	if st.Coverage() <= 0 || st.Coverage() > 1 {
		t.Fatalf("coverage = %f", st.Coverage())
	}
	if st.Paths() < 2 {
		t.Fatalf("paths = %d", st.Paths())
	}
	if st.Summary() == "" {
		t.Fatal("empty summary")
	}
}
