package search_test

import (
	"testing"

	"hotg/internal/concolic"
	"hotg/internal/lexapp"
	"hotg/internal/search"
)

// TestCacheCapCanonicalIdentity is the eviction-correctness gate: a search
// whose proof cache is LRU-capped hard enough to evict constantly must stay
// bit-identical in canonical stats to the unbounded run — eviction may cost
// wall clock (re-proving), never determinism — at workers 1 and 4.
func TestCacheCapCanonicalIdentity(t *testing.T) {
	for _, w := range []*lexapp.Workload{lexapp.Lexer(), lexapp.Bar(), lexapp.KStep(2)} {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			base := search.Options{MaxRuns: 60, Seeds: w.Seeds, Bounds: w.Bounds}
			ref := search.Run(concolic.New(w.Build(), concolic.ModeHigherOrder), base)
			refCanon, err := ref.Canonical()
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				for _, capacity := range []int{1, 3} {
					opts := base
					opts.Workers = workers
					opts.CacheCap = capacity
					st := search.Run(concolic.New(w.Build(), concolic.ModeHigherOrder), opts)
					canon, err := st.Canonical()
					if err != nil {
						t.Fatal(err)
					}
					if string(canon) != string(refCanon) {
						t.Errorf("workers=%d cap=%d: canonical stats diverged from uncapped run\ncapped:   %s\nuncapped: %s",
							workers, capacity, canon, refCanon)
					}
					if ref.ProofCacheMisses > capacity && st.ProofCacheEvictions == 0 {
						t.Errorf("workers=%d cap=%d: expected evictions (uncapped run cached %d entries), got none",
							workers, capacity, ref.ProofCacheMisses)
					}
				}
			}
		})
	}
}

// TestCacheCapSatMode repeats the identity check for the satisfiability
// cache (DART mode), whose entries are keyed by formula alone.
func TestCacheCapSatMode(t *testing.T) {
	w := lexapp.Lexer()
	base := search.Options{MaxRuns: 60, Seeds: w.Seeds, Bounds: w.Bounds}
	ref := search.Run(concolic.New(w.Build(), concolic.ModeUnsound), base)
	refCanon, err := ref.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		opts := base
		opts.Workers = workers
		opts.CacheCap = 2
		st := search.Run(concolic.New(w.Build(), concolic.ModeUnsound), opts)
		canon, err := st.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if string(canon) != string(refCanon) {
			t.Errorf("workers=%d: capped DART run diverged from uncapped", workers)
		}
	}
}
