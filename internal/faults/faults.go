// Package faults is the pipeline's fault-injection harness. A test (or a
// chaos-style operator drill) installs a Plan describing which failures to
// force — solver timeouts, prover panics, executor crashes — and the
// instrumented layers consult it at their entry points. The production path
// pays one atomic pointer load per potential fault site; with no plan
// installed every probe is a nil check.
//
// The harness exists to *prove* the graceful-degradation story of DESIGN.md
// §8: the search coordinator must survive every injected failure, finish the
// run, and report partial Stats. The tests in internal/search/faults_test.go
// exercise each failure class under the race detector; `make test-faults`
// runs exactly those.
//
// Plans are process-global (the instrumented packages cannot depend on test
// state), so tests that install one must not run in parallel with other
// searches; Set returns a restore function to make scoping mechanical:
//
//	defer faults.Set(&faults.Plan{ProvePanic: true})()
package faults

import "sync/atomic"

// Plan describes which faults to force. Fields are read concurrently by
// worker goroutines; configure the plan fully before Set and do not mutate it
// afterwards (Skip is the one exception — it is decremented atomically by the
// firing probes themselves).
type Plan struct {
	// ProveTimeout makes every fol.ProveCore call report OutcomeTimeout
	// without searching, as if its wall-clock deadline had already expired.
	ProveTimeout bool
	// ProvePanic makes every fol.ProveCore call panic. The search worker
	// wrappers must recover and degrade the target.
	ProvePanic bool
	// SolveTimeout makes every smt.Solve call report StatusTimeout without
	// solving.
	SolveTimeout bool
	// ExecPanic makes every concolic Engine.Run call panic. The search batch
	// executor must recover, drop the item, and keep going.
	ExecPanic bool
	// VMWrongMod makes mini.RunVM compute floored (Python-style) modulo
	// instead of Go's truncated modulo, so results differ from the
	// interpreter exactly when the dividend is negative and the remainder is
	// nonzero. Unlike the crash faults above, this is a *silent semantic*
	// defect: nothing panics and no Stats field flags it — only a
	// differential oracle comparing the VM against the interpreter
	// (internal/difftest, DESIGN.md §10) can catch it. One credit is
	// consumed per RunVM call, not per instruction.
	VMWrongMod bool

	// Skip lets the first Skip firings (across all fault kinds) pass through
	// unharmed before faults start triggering, so a search can make partial
	// progress first. Decremented atomically.
	Skip int64
}

// active is the installed plan; nil means no fault injection.
var active atomic.Pointer[Plan]

// Set installs the plan and returns a function restoring the previous one.
// A nil plan disables injection.
func Set(p *Plan) (restore func()) {
	prev := active.Swap(p)
	return func() { active.Store(prev) }
}

// Active returns the installed plan, or nil.
func Active() *Plan { return active.Load() }

// fire consumes one Skip credit if any remain, returning whether the fault
// should trigger given its enable flag. The receiver is non-nil: the Fire*
// wrappers below guard before touching any field (the enable flag is a field
// access, so the nil check cannot live here).
func (p *Plan) fire(enabled bool) bool {
	if !enabled {
		return false
	}
	return atomic.AddInt64(&p.Skip, -1) < 0
}

// FireProveTimeout reports whether this ProveCore call must time out.
func (p *Plan) FireProveTimeout() bool { return p != nil && p.fire(p.ProveTimeout) }

// FireProvePanic reports whether this ProveCore call must panic.
func (p *Plan) FireProvePanic() bool { return p != nil && p.fire(p.ProvePanic) }

// FireSolveTimeout reports whether this smt.Solve call must time out.
func (p *Plan) FireSolveTimeout() bool { return p != nil && p.fire(p.SolveTimeout) }

// FireExecPanic reports whether this Engine.Run call must panic.
func (p *Plan) FireExecPanic() bool { return p != nil && p.fire(p.ExecPanic) }

// FireVMWrongMod reports whether this mini.RunVM call must miscompute modulo.
func (p *Plan) FireVMWrongMod() bool { return p != nil && p.fire(p.VMWrongMod) }
