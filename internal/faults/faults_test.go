package faults

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestNilPlanNeverFires pins the production fast path: with no plan
// installed, every probe is a nil check that reports false.
func TestNilPlanNeverFires(t *testing.T) {
	defer Set(nil)()
	if Active() != nil {
		t.Fatal("Active() is non-nil after Set(nil)")
	}
	var p *Plan // the Fire* wrappers must tolerate a nil receiver
	for name, fire := range map[string]func() bool{
		"ProveTimeout": p.FireProveTimeout,
		"ProvePanic":   p.FireProvePanic,
		"SolveTimeout": p.FireSolveTimeout,
		"ExecPanic":    p.FireExecPanic,
		"VMWrongMod":   p.FireVMWrongMod,
	} {
		if fire() {
			t.Errorf("nil plan fired %s", name)
		}
	}
}

// TestDisabledFaultConsumesNoCredits checks that probes for faults the plan
// does not enable neither fire nor burn Skip credits.
func TestDisabledFaultConsumesNoCredits(t *testing.T) {
	p := &Plan{ProveTimeout: true, Skip: 2}
	for i := 0; i < 10; i++ {
		if p.FireSolveTimeout() || p.FireExecPanic() || p.FireVMWrongMod() {
			t.Fatal("disabled fault fired")
		}
	}
	if got := atomic.LoadInt64(&p.Skip); got != 2 {
		t.Errorf("disabled probes consumed credits: Skip = %d, want 2", got)
	}
}

// TestSkipCreditsArmAfterExhaustion checks the arming protocol: the first
// Skip firings pass through unharmed, then every probe triggers.
func TestSkipCreditsArmAfterExhaustion(t *testing.T) {
	p := &Plan{VMWrongMod: true, Skip: 3}
	for i := 0; i < 3; i++ {
		if p.FireVMWrongMod() {
			t.Fatalf("probe %d fired with credits remaining", i)
		}
	}
	for i := 0; i < 5; i++ {
		if !p.FireVMWrongMod() {
			t.Fatalf("probe %d did not fire after credits ran out", i)
		}
	}
}

// TestSkipCreditsSharedAcrossKinds checks that the credit pool is global to
// the plan, not per fault kind.
func TestSkipCreditsSharedAcrossKinds(t *testing.T) {
	p := &Plan{ProveTimeout: true, SolveTimeout: true, Skip: 2}
	if p.FireProveTimeout() || p.FireSolveTimeout() {
		t.Fatal("fired while the shared pool had credits")
	}
	if !p.FireProveTimeout() || !p.FireSolveTimeout() {
		t.Fatal("did not fire after the shared pool drained")
	}
}

// TestSetRestoresPrevious checks that restore functions unwind nested
// installs in LIFO order.
func TestSetRestoresPrevious(t *testing.T) {
	outer := &Plan{ProvePanic: true}
	restoreOuter := Set(outer)
	inner := &Plan{ExecPanic: true}
	restoreInner := Set(inner)
	if Active() != inner {
		t.Fatal("inner plan not active")
	}
	restoreInner()
	if Active() != outer {
		t.Fatal("restore did not reinstate the outer plan")
	}
	restoreOuter()
	if Active() != nil {
		t.Fatal("restore did not reinstate the empty state")
	}
}

// TestConcurrentProbesExactCredits runs many goroutines against one armed
// plan under the race detector and checks the credit accounting is exact:
// precisely Skip probes pass through.
func TestConcurrentProbesExactCredits(t *testing.T) {
	const (
		workers = 8
		perG    = 1000
		skip    = 137
	)
	p := &Plan{VMWrongMod: true, Skip: skip}
	defer Set(p)()
	var fired int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if Active().FireVMWrongMod() {
					atomic.AddInt64(&fired, 1)
				}
			}
		}()
	}
	wg.Wait()
	if want := int64(workers*perG - skip); fired != want {
		t.Errorf("fired %d probes, want %d (total %d minus %d credits)",
			fired, want, workers*perG, skip)
	}
}
