// Command hotg-server runs higher-order test generation as a service: a
// long-running HTTP server that accepts campaign submissions, runs each as
// an isolated session (own corpus root, own metrics registry and flight
// recorder, own cancellation context), streams per-session progress as
// JSONL, and serves results. Admission is bounded (429 + Retry-After past
// the queue), retained results live under a server-wide memory budget with
// LRU eviction, and SIGTERM drains gracefully: running sessions stop at
// their last periodic checkpoint and resume bit-identically when the server
// restarts on the same data directory.
//
// Usage:
//
//	hotg-server -addr :8700 -data ./serve-data
//	hotg-server -addr :8700 -data ./serve-data -max-concurrent 8 -mem-budget 512000000
//	kill -TERM <pid>     # drain; restart resumes interrupted sessions
//
// Load harness (spawns its own server subprocess, SIGTERMs it mid-run,
// restarts it, and requires every campaign to finish):
//
//	hotg-server -loadtest -sessions 200 -runs 12
//	hotg-server -loadtest -sessions 25 -runs 12 -flight-dump fail.jsonl
//	hotg-server -loadtest -target http://127.0.0.1:8700 -no-restart
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"hotg/internal/obs"
	"hotg/internal/obshttp"
	"hotg/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command; it returns the process exit code so tests can
// drive the CLI without spawning a process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hotg-server", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:8700", "HTTP listen address (campaign API + introspection)")
		dataDir   = fs.String("data", "serve-data", "data directory: session index + per-corpus campaign roots")
		maxConc   = fs.Int("max-concurrent", 4, "sessions running at once")
		maxQueue  = fs.Int("max-queue", 256, "sessions waiting for a slot before 429")
		memBudget = fs.Int64("mem-budget", 256<<20, "bytes of retained finished-session state before LRU eviction")
		cacheCap  = fs.Int("cache-cap", 4096, "per-session proof-cache LRU entries per map (-1 = unbounded)")
		ckptEvery = fs.Int("checkpoint-every", 20, "default checkpoint cadence in runs (bounds replay after a drain)")
		drainTmo  = fs.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for sessions to checkpoint and stop")

		// Load-harness mode.
		loadtest  = fs.Bool("loadtest", false, "run the load harness instead of serving")
		target    = fs.String("target", "", "loadtest: existing server URL (default: spawn a server subprocess)")
		sessions  = fs.Int("sessions", 200, "loadtest: concurrent campaigns to submit")
		runs      = fs.Int("runs", 12, "loadtest: execution budget per campaign")
		clientN   = fs.Int("client-concurrency", 32, "loadtest: concurrent submitters/pollers")
		noRestart = fs.Bool("no-restart", false, "loadtest: skip the SIGTERM drain/restart drill")
		flightOut = fs.String("flight-dump", "", "loadtest: on failure, dump failed sessions' flight events (JSONL) here")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *loadtest {
		return runLoadtest(loadCfg{
			target: *target, sessions: *sessions, runs: *runs, clientN: *clientN,
			restart: !*noRestart, flightOut: *flightOut, addr: *addr,
		}, stdout, stderr)
	}
	return runServer(serverCfg{
		addr: *addr, dataDir: *dataDir, maxConc: *maxConc, maxQueue: *maxQueue,
		memBudget: *memBudget, cacheCap: *cacheCap, ckptEvery: *ckptEvery, drainTmo: *drainTmo,
	}, stdout, stderr)
}

type serverCfg struct {
	addr, dataDir       string
	maxConc, maxQueue   int
	memBudget           int64
	cacheCap, ckptEvery int
	drainTmo            time.Duration
}

// runServer boots the campaign server, mounts it on the introspection
// surface, and serves until SIGTERM/SIGINT drains it.
func runServer(cfg serverCfg, stdout, stderr io.Writer) int {
	o := obs.New()
	srv, err := serve.New(serve.Options{
		Dir: cfg.dataDir, MaxConcurrent: cfg.maxConc, MaxQueue: cfg.maxQueue,
		MemoryBudget: cfg.memBudget, CacheCap: cfg.cacheCap,
		CheckpointEvery: cfg.ckptEvery, Obs: o,
	})
	if err != nil {
		fmt.Fprintf(stderr, "hotg-server: %v\n", err)
		return 1
	}
	intro := obshttp.New(o)
	intro.Info = srv.Info
	intro.Sessions = srv.SessionStatuses
	intro.Mounts = map[string]http.Handler{"/api/": srv.Handler()}
	bound, shutdown, err := obshttp.Serve(cfg.addr, intro)
	if err != nil {
		fmt.Fprintf(stderr, "hotg-server: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "hotg-server listening on %s (data %s)\n", bound, cfg.dataDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	got := <-sig
	fmt.Fprintf(stdout, "hotg-server: %v — draining (timeout %v)\n", got, cfg.drainTmo)
	derr := srv.Drain(cfg.drainTmo)
	shutdown()
	if derr != nil {
		fmt.Fprintf(stderr, "hotg-server: %v\n", derr)
		return 1
	}
	fmt.Fprintln(stdout, "hotg-server: drained; interrupted sessions resume on restart")
	return 0
}

// --- load harness -----------------------------------------------------------

type loadCfg struct {
	target    string
	sessions  int
	runs      int
	clientN   int
	restart   bool
	flightOut string
	addr      string
}

// loadSummary is the machine-readable harness verdict, printed as one JSON
// line — eval and CI parse it.
type loadSummary struct {
	Sessions       int   `json:"sessions"`
	Completed      int   `json:"completed"`
	Lost           int   `json:"lost"`
	Resumed        int   `json:"resumed"`
	Evicted        int   `json:"evicted"`
	Restarted      bool  `json:"restarted"`
	P50DoneMS      int64 `json:"p50_done_ms"`
	P99DoneMS      int64 `json:"p99_done_ms"`
	P50FirstTestMS int64 `json:"p50_first_test_ms"`
	P99FirstTestMS int64 `json:"p99_first_test_ms"`
	WallMS         int64 `json:"wall_ms"`
}

// runLoadtest floods a server with small concurrent campaigns and requires
// zero lost sessions. Unless -no-restart, it owns the server subprocess and
// SIGTERMs it mid-flood: queued and running campaigns must survive the
// drain and finish after the restart.
func runLoadtest(cfg loadCfg, stdout, stderr io.Writer) int {
	start := time.Now()
	base := cfg.target
	var proc *serverProc
	if base == "" {
		dir, err := os.MkdirTemp("", "hotg-load-*")
		if err != nil {
			fmt.Fprintf(stderr, "loadtest: %v\n", err)
			return 1
		}
		defer os.RemoveAll(dir)
		port, err := freePort()
		if err != nil {
			fmt.Fprintf(stderr, "loadtest: %v\n", err)
			return 1
		}
		proc = &serverProc{addr: fmt.Sprintf("127.0.0.1:%d", port), dataDir: dir, stderr: stderr}
		if err := proc.start(); err != nil {
			fmt.Fprintf(stderr, "loadtest: start server: %v\n", err)
			return 1
		}
		defer proc.kill()
		base = "http://" + proc.addr
	} else if cfg.restart {
		fmt.Fprintln(stderr, "loadtest: -target given; skipping the restart drill (use -no-restart to silence)")
		cfg.restart = false
	}

	client := &loadClient{base: base}
	if err := client.waitUp(10 * time.Second); err != nil {
		fmt.Fprintf(stderr, "loadtest: server never came up: %v\n", err)
		return 1
	}

	workloads := []string{"foo", "bar", "obscure", "foo-bis"}
	// Submit everything with bounded client concurrency; every submission
	// retries through 429/503/connection errors (the restart window).
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.clientN)
	for i := 0; i < cfg.sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			spec := serve.Spec{
				Workload: workloads[i%len(workloads)],
				MaxRuns:  cfg.runs, Workers: 1,
				CorpusID:        fmt.Sprintf("load-%04d", i),
				CheckpointEvery: 3,
			}
			client.submit(spec, 2*time.Minute)
		}(i)
	}

	// Mid-flood: SIGTERM the server, wait for the drain to land, restart.
	restarted := false
	if cfg.restart && proc != nil {
		time.Sleep(300 * time.Millisecond)
		if err := proc.sigterm(30 * time.Second); err != nil {
			fmt.Fprintf(stderr, "loadtest: drain: %v\n", err)
			return 1
		}
		if err := proc.start(); err != nil {
			fmt.Fprintf(stderr, "loadtest: restart: %v\n", err)
			return 1
		}
		restarted = true
	}
	wg.Wait()

	// Wait until every corpus has a completed campaign.
	deadline := time.Now().Add(10 * time.Minute)
	var sum loadSummary
	sum.Sessions = cfg.sessions
	sum.Restarted = restarted
	want := make(map[string]bool, cfg.sessions)
	for i := 0; i < cfg.sessions; i++ {
		want[fmt.Sprintf("load-%04d", i)] = true
	}
	var statuses []serve.Status
	for time.Now().Before(deadline) {
		var err error
		statuses, err = client.list()
		if err != nil {
			time.Sleep(200 * time.Millisecond)
			continue
		}
		done := 0
		pending := false
		for _, st := range statuses {
			if !want[st.CorpusID] {
				continue
			}
			switch st.State {
			case serve.StateDone, serve.StateEvicted:
				done++
			case serve.StateFailed, serve.StateCancelled:
				done++ // counted, reported as lost below
			default:
				pending = true
			}
		}
		if !pending && done >= len(want) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Score: a corpus is lost unless some session finished it with state
	// done (evicted results were done first — their result.json is on disk).
	finished := map[string]serve.Status{}
	var failedIDs []string
	for _, st := range statuses {
		if !want[st.CorpusID] {
			continue
		}
		switch st.State {
		case serve.StateDone, serve.StateEvicted:
			finished[st.CorpusID] = st
		case serve.StateFailed:
			failedIDs = append(failedIDs, st.ID)
		}
	}
	var doneMS, firstMS []int64
	for corpus := range want {
		st, ok := finished[corpus]
		if !ok {
			sum.Lost++
			continue
		}
		sum.Completed++
		if st.Resumed {
			sum.Resumed++
		}
		if st.State == serve.StateEvicted {
			sum.Evicted++
			continue
		}
		if res, err := client.result(st.ID); err == nil {
			doneMS = append(doneMS, res.DoneMS)
			if res.FirstTestMS >= 0 {
				firstMS = append(firstMS, res.FirstTestMS)
			}
		}
	}
	sum.P50DoneMS, sum.P99DoneMS = percentile(doneMS, 50), percentile(doneMS, 99)
	sum.P50FirstTestMS, sum.P99FirstTestMS = percentile(firstMS, 50), percentile(firstMS, 99)
	sum.WallMS = time.Since(start).Milliseconds()

	out, _ := json.Marshal(sum)
	fmt.Fprintln(stdout, string(out))
	if sum.Lost > 0 || len(failedIDs) > 0 {
		fmt.Fprintf(stderr, "loadtest: %d lost, %d failed sessions\n", sum.Lost, len(failedIDs))
		if cfg.flightOut != "" {
			client.dumpFlights(append(failedIDs, lostCorpora(want, finished)...), cfg.flightOut)
			fmt.Fprintf(stderr, "loadtest: flight dump written to %s\n", cfg.flightOut)
		}
		return 1
	}
	return 0
}

func lostCorpora(want map[string]bool, finished map[string]serve.Status) []string {
	var out []string
	for c := range want {
		if _, ok := finished[c]; !ok {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

func percentile(v []int64, p int) int64 {
	if len(v) == 0 {
		return 0
	}
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	idx := (len(v)-1)*p + 50
	return v[idx/100]
}

// serverProc owns the server subprocess for the restart drill.
type serverProc struct {
	addr, dataDir string
	stderr        io.Writer
	cmd           *exec.Cmd
}

func (p *serverProc) start() error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	p.cmd = exec.Command(exe, "-addr", p.addr, "-data", p.dataDir,
		"-max-concurrent", "8", "-checkpoint-every", "3", "-drain-timeout", "30s")
	p.cmd.Stdout = p.stderr
	p.cmd.Stderr = p.stderr
	return p.cmd.Start()
}

// sigterm drains the subprocess and waits for a clean exit.
func (p *serverProc) sigterm(timeout time.Duration) error {
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		_ = p.cmd.Process.Kill()
		return errors.New("server did not exit after SIGTERM")
	}
}

func (p *serverProc) kill() {
	if p.cmd != nil && p.cmd.Process != nil {
		_ = p.cmd.Process.Kill()
		_ = p.cmd.Wait()
	}
}

func freePort() (int, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	port := ln.Addr().(*net.TCPAddr).Port
	return port, ln.Close()
}

// loadClient is the minimal campaign-API client the harness needs, with
// retry-through-restart semantics.
type loadClient struct {
	base string
	hc   http.Client
}

func (c *loadClient) waitUp(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		resp, err := c.hc.Get(c.base + "/statusz")
		if err == nil {
			resp.Body.Close()
			return nil
		}
		last = err
		time.Sleep(50 * time.Millisecond)
	}
	return last
}

// submit POSTs a spec, retrying 429 (backoff), 503, and connection errors
// until the deadline. A 409 after a retry means an earlier attempt landed —
// that is success.
func (c *loadClient) submit(spec serve.Spec, timeout time.Duration) {
	body, _ := json.Marshal(spec)
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := c.hc.Post(c.base+"/api/v1/campaigns", "application/json", bytes.NewReader(body))
		if err != nil {
			time.Sleep(200 * time.Millisecond)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted, http.StatusConflict:
			return
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			time.Sleep(150 * time.Millisecond)
		default:
			time.Sleep(100 * time.Millisecond)
		}
	}
}

func (c *loadClient) list() ([]serve.Status, error) {
	resp, err := c.hc.Get(c.base + "/api/v1/campaigns")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out []serve.Status
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

func (c *loadClient) result(id string) (*serve.Result, error) {
	resp, err := c.hc.Get(c.base + "/api/v1/campaigns/" + id + "/result")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("result %s: status %d", id, resp.StatusCode)
	}
	var res serve.Result
	return &res, json.NewDecoder(resp.Body).Decode(&res)
}

// dumpFlights concatenates the flight-event streams of the given sessions
// into one JSONL file for post-mortem.
func (c *loadClient) dumpFlights(ids []string, path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	defer f.Close()
	for _, id := range ids {
		resp, err := c.hc.Get(c.base + "/api/v1/campaigns/" + id + "/events")
		if err != nil {
			continue
		}
		io.Copy(f, resp.Body)
		resp.Body.Close()
	}
}
