// Command hotg runs one test-generation technique on one workload and prints
// a report: coverage, generated tests, divergences, prover statistics, and
// every bug found (with the triggering input).
//
// Usage:
//
//	hotg -list
//	hotg -workload lexer -mode higher-order -runs 300
//	hotg -workload lexer -mode higher-order -runs 300 -workers 8
//	hotg -workload foo -mode dart-unsound -runs 50 -v
//	hotg -workload lexer -runs 300 -profile
//	hotg -workload lexer -runs 300 -trace trace.jsonl -trace-chrome trace.json
//	hotg -workload lexer -runs 300 -proof-timeout 50ms -degrade
//	hotg -workload lexer -runs 300 -budget 2s
//	hotg -workload lexer -runs 300 -corpus ./camp -checkpoint-every 50
//	hotg -workload lexer -runs 300 -corpus ./camp -resume
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"hotg"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// validModes are the -mode values, in ladder order, plus the special "all".
var validModes = []string{
	"static", "dart-unsound", "dart-sound", "dart-sound-delayed",
	"higher-order", "random", "all",
}

func validModeList() string { return strings.Join(validModes, ", ") }

// sortedWorkloads returns the registry in name order — the registry itself
// is in registration order, which is not stable as workloads are added, so
// every user-facing listing sorts first.
func sortedWorkloads() []*hotg.Workload {
	ws := append([]*hotg.Workload(nil), hotg.Workloads()...)
	sort.Slice(ws, func(i, j int) bool { return ws[i].Name < ws[j].Name })
	return ws
}

func validWorkloadList() string {
	var names []string
	for _, w := range sortedWorkloads() {
		names = append(names, w.Name)
	}
	return strings.Join(names, ", ")
}

// run is the whole command; it returns the process exit code so tests can
// drive the CLI without spawning a process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hotg", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list       = fs.Bool("list", false, "list available workloads and modes")
		workload   = fs.String("workload", "obscure", "workload name (see -list)")
		mode       = fs.String("mode", "higher-order", "technique: "+validModeList())
		runs       = fs.Int("runs", 100, "execution budget")
		refute     = fs.Bool("refute", false, "enable the invalidity prover (higher-order mode)")
		seed       = fs.Int64("seed", 1, "random seed (random mode)")
		verbose    = fs.Bool("v", false, "print every bug input")
		samplesIn  = fs.String("samples-in", "", "load IOF samples from a previous session (JSON)")
		samplesOut = fs.String("samples-out", "", "save the IOF store at exit (JSON, written atomically)")
		summaries  = fs.Bool("summaries", false, "enable compositional path summaries (higher-order mode)")
		workers    = fs.Int("workers", 0, "worker goroutines for test execution and proving (0 = GOMAXPROCS); results are identical at any count")
		tracePath  = fs.String("trace", "", "write a structured JSONL event trace to this file")
		profile    = fs.Bool("profile", false, "print a metrics profile (latency percentiles, cache traffic) after the run")
		chromePath = fs.String("trace-chrome", "", "write a Chrome trace_event JSON (Perfetto, chrome://tracing) to this file")
		budgetD    = fs.Duration("budget", 0, "wall-clock ceiling for the whole search (0 = unlimited); a fired ceiling returns partial results")
		proofTmo   = fs.Duration("proof-timeout", 0, "wall-clock deadline per validity proof / solver query (0 = unlimited)")
		degrade    = fs.Bool("degrade", false, "retry timed-out higher-order proofs with quantifier-free solving, then plain concretization (see README)")
		corpusDir  = fs.String("corpus", "", "campaign directory: persist corpus, crash buckets, and checkpoints here across sessions")
		resume     = fs.Bool("resume", false, "resume the search from the campaign's latest checkpoint (requires -corpus)")
		ckptEvery  = fs.Int("checkpoint-every", 0, "checkpoint the search every N runs into the campaign directory (requires -corpus)")
		httpAddr   = fs.String("http", "", "serve live introspection (/statusz, /metrics, /events, /debug/pprof) on this address, e.g. :8080")
		statusTick = fs.Duration("status-every", 0, "print a one-line progress report every interval while the search runs")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, "workloads:")
		for _, w := range sortedWorkloads() {
			fmt.Fprintf(stdout, "  %-16s %s\n", w.Name, w.Description)
		}
		fmt.Fprintln(stdout, "modes:", validModeList())
		return 0
	}

	w, ok := hotg.GetWorkload(*workload)
	if !ok {
		fmt.Fprintf(stderr, "hotg: unknown workload %q\nvalid workloads: %s\n", *workload, validWorkloadList())
		return 2
	}
	m, modeKnown := parseMode(*mode)
	if !modeKnown && *mode != "random" && *mode != "all" {
		fmt.Fprintf(stderr, "hotg: unknown mode %q\nvalid modes: %s\n", *mode, validModeList())
		return 2
	}
	if *corpusDir == "" && (*resume || *ckptEvery > 0) {
		fmt.Fprintln(stderr, "hotg: -resume and -checkpoint-every require -corpus")
		return 2
	}
	if *corpusDir != "" && (*mode == "random" || *mode == "all") {
		fmt.Fprintf(stderr, "hotg: -corpus requires a concolic mode, not %q\n", *mode)
		return 2
	}
	prog := w.Build()

	if *mode == "all" {
		compareAll(stdout, w, *runs, *seed, *workers, *refute, *summaries)
		return 0
	}

	o, traceFile, err := buildObs(*tracePath, *chromePath, *profile, *httpAddr != "" || *statusTick > 0)
	if err != nil {
		fmt.Fprintln(stderr, "hotg:", err)
		return 2
	}
	if *httpAddr != "" {
		addr, shutdown, err := hotg.ServeIntrospection(*httpAddr, o, headlineFrom(o))
		if err != nil {
			fmt.Fprintln(stderr, "hotg:", err)
			return 2
		}
		defer shutdown()
		fmt.Fprintf(stdout, "introspection: http://%s/statusz\n", addr)
	}
	if *statusTick > 0 {
		stop := startStatusTicker(stderr, o, *statusTick)
		defer stop()
	}

	var stats *hotg.Stats
	var cache *hotg.SummaryCache
	var camp *hotg.Campaign
	if *mode == "random" {
		if *tracePath != "" || *chromePath != "" || *profile {
			fmt.Fprintln(stderr, "hotg: -trace/-profile/-trace-chrome instrument the concolic pipeline and are ignored in random mode")
		}
		stats = hotg.Fuzz(prog, hotg.FuzzOptions{
			MaxRuns: *runs, Seeds: w.Seeds, Bounds: w.Bounds,
			Rand: rand.New(rand.NewSource(*seed)),
		})
	} else {
		eng := hotg.NewEngine(prog, m)
		if *summaries {
			cache = hotg.NewSummaryCache()
			eng.Summaries = cache
		}
		if *samplesIn != "" {
			f, err := os.Open(*samplesIn)
			if err != nil {
				fmt.Fprintln(stderr, "hotg:", err)
				return 2
			}
			n, err := hotg.LoadSamples(eng, f)
			f.Close()
			if err != nil {
				fmt.Fprintln(stderr, "hotg:", err)
				return 2
			}
			fmt.Fprintf(stdout, "loaded %d samples from %s\n", n, *samplesIn)
		}
		opts := hotg.SearchOptions{
			MaxRuns: *runs, Seeds: w.Seeds, Bounds: w.Bounds, Refute: *refute,
			Workers: *workers, Obs: o,
			Budget: hotg.SearchBudget{
				ProofTimeout:  *proofTmo,
				SearchTimeout: *budgetD,
				Degrade:       *degrade,
			},
		}
		if *corpusDir != "" {
			camp, err = hotg.OpenCampaign(*corpusDir, w.Name, m.String(), o)
			if err != nil {
				fmt.Fprintln(stderr, "hotg:", err)
				return 2
			}
			opts.OnRun = camp.RecordRun
			if *ckptEvery > 0 {
				opts.Checkpoint = hotg.CheckpointOptions{Every: *ckptEvery, Sink: camp.SaveCheckpoint}
			}
			if *resume {
				if *samplesIn != "" {
					fmt.Fprintln(stderr, "hotg: -samples-in cannot combine with -resume (the checkpoint restores the sample store)")
					return 2
				}
				snap, err := camp.LatestCheckpoint()
				if err != nil {
					fmt.Fprintln(stderr, "hotg:", err)
					return 2
				}
				if snap == nil {
					fmt.Fprintf(stderr, "hotg: campaign %s has no checkpoint to resume from\n", *corpusDir)
					return 2
				}
				if err := snap.Validate(eng); err != nil {
					fmt.Fprintln(stderr, "hotg:", err)
					return 2
				}
				opts.Restore = snap
				fmt.Fprintf(stdout, "resuming campaign %s at run %d (session %d)\n", *corpusDir, snap.Runs, camp.Session)
			} else if seeds := camp.SeedInputs(0); len(seeds) > 0 {
				// A fresh session over an existing corpus starts from the
				// scheduler-ranked saved inputs instead of the workload seeds.
				opts.Seeds = seeds
				fmt.Fprintf(stdout, "seeding from corpus: %d ranked inputs (session %d)\n", len(seeds), camp.Session)
			}
		}
		stats = hotg.Explore(eng, opts)
		if camp != nil {
			if err := camp.Commit(); err != nil {
				fmt.Fprintln(stderr, "hotg:", err)
				return 1
			}
		}
		if *samplesOut != "" {
			if err := writeSamples(eng, *samplesOut); err != nil {
				fmt.Fprintln(stderr, "hotg:", err)
				return 2
			}
			fmt.Fprintf(stdout, "saved %d samples to %s\n", eng.Samples.Len(), *samplesOut)
		}
	}

	if o != nil {
		// Surface emission errors as soon as the run ends, not only at Close:
		// a truncated trace should be flagged next to the results it taints.
		if err := o.Trace.Err(); err != nil {
			fmt.Fprintln(stderr, "hotg: trace: emission error during run:", err)
		}
	}
	fmt.Fprintln(stdout, stats.Summary())
	if ps := stats.ParallelSummary(); ps != "" {
		fmt.Fprintln(stdout, ps)
	}
	if bs := stats.BudgetSummary(); bs != "" {
		fmt.Fprintln(stdout, bs)
	}
	if stats.CheckpointError != "" {
		fmt.Fprintf(stderr, "hotg: checkpointing disabled mid-run: %s\n", stats.CheckpointError)
	}
	if cache != nil {
		fmt.Fprintf(stdout, "summaries: hits=%d misses=%d fallbacks=%d cases=%d\n",
			cache.Hits, cache.Misses, cache.Fallbacks, cache.Cases())
	}
	if camp != nil {
		fmt.Fprintf(stdout, "campaign: %d corpus entries, %d crash buckets (%d new), %d checkpoints\n",
			len(camp.Entries()), len(camp.Buckets()), camp.NewBuckets(), stats.Checkpoints)
	}
	if len(stats.Bugs) == 0 {
		fmt.Fprintln(stdout, "no bugs found")
	} else {
		fmt.Fprintf(stdout, "%d bug(s):\n", len(stats.Bugs))
		for _, b := range stats.Bugs {
			// Function-valued inputs are part of the reproducer: without the
			// decision tables the scalar input alone does not reach the bug, so
			// they print (canonical form, declaration order) even when -v is off.
			funcs := ""
			if len(b.Funcs) > 0 {
				funcs = " funcs=[" + strings.Join(b.Funcs, "; ") + "]"
			}
			if *verbose {
				fmt.Fprintf(stdout, "  run %-5d %-10s %-20q input=%v%s\n", b.Run, b.Kind, b.Msg, b.Input, funcs)
			} else {
				fmt.Fprintf(stdout, "  run %-5d %-10s %q%s\n", b.Run, b.Kind, b.Msg, funcs)
			}
		}
	}

	return finishObs(stdout, stderr, o, traceFile, *tracePath, *chromePath, *profile)
}

// buildObs assembles the observer requested by -trace/-profile/-trace-chrome,
// or returns nil when none is set so the search runs on the zero-overhead
// path. live (set by -http / -status-every) forces an observer — metrics feed
// /statusz — and attaches a flight recorder so /events has a tail to serve.
// The returned file (if any) is the open -trace output, closed by finishObs.
func buildObs(tracePath, chromePath string, profile, live bool) (*hotg.Observer, *os.File, error) {
	if tracePath == "" && chromePath == "" && !profile && !live {
		return nil, nil, nil
	}
	o := hotg.NewObserver()
	var f *os.File
	if tracePath != "" {
		var err error
		f, err = os.Create(tracePath)
		if err != nil {
			return nil, nil, err
		}
		o.Trace = hotg.NewTracer(f)
	} else if chromePath != "" || live {
		o.Trace = hotg.NewTracer(nil)
	}
	if chromePath != "" {
		o.Trace.Keep()
	}
	if live {
		o.Trace.WithRecorder(hotg.NewFlightRecorder(hotg.DefaultFlightRecorderSize))
	}
	return o, f, nil
}

// statusKeys orders the live gauges in the -status-every report.
var statusKeys = []string{"runs", "runs_remaining", "tests", "bugs", "frontier_hot", "frontier_cold"}

// headlineFrom builds the /statusz headline callback: the search's live
// progress gauges, read straight from the registry.
func headlineFrom(o *hotg.Observer) func() map[string]int64 {
	return func() map[string]int64 {
		return map[string]int64{
			"runs":           o.Metrics.Get("search.live.runs"),
			"runs_remaining": o.Metrics.Get("search.live.runs_remaining"),
			"tests":          o.Metrics.Get("search.live.tests"),
			"bugs":           o.Metrics.Get("search.live.bugs"),
			"frontier_hot":   o.Metrics.Get("search.frontier.hot"),
			"frontier_cold":  o.Metrics.Get("search.frontier.cold"),
		}
	}
}

// startStatusTicker prints a one-line progress report every interval until
// the returned stop function is called.
func startStatusTicker(w io.Writer, o *hotg.Observer, every time.Duration) (stop func()) {
	headline := headlineFrom(o)
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				fmt.Fprintf(w, "status: %s\n", hotg.FormatStatusLine(headline(), statusKeys))
			}
		}
	}()
	var stopped bool
	return func() {
		if !stopped {
			stopped = true
			close(done)
			<-exited
		}
	}
}

// finishObs flushes and closes the trace outputs and prints the profile,
// returning the exit code (1 on any output failure).
func finishObs(stdout, stderr io.Writer, o *hotg.Observer, traceFile *os.File, tracePath, chromePath string, profile bool) int {
	if o == nil {
		return 0
	}
	failed := false
	if err := o.Trace.Close(); err != nil {
		fmt.Fprintln(stderr, "hotg: trace:", err)
		failed = true
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			fmt.Fprintln(stderr, "hotg: trace:", err)
			failed = true
		} else {
			fmt.Fprintf(stdout, "trace written to %s\n", tracePath)
		}
	}
	if chromePath != "" {
		if err := writeChrome(o, chromePath); err != nil {
			fmt.Fprintln(stderr, "hotg: trace-chrome:", err)
			failed = true
		} else {
			fmt.Fprintf(stdout, "chrome trace written to %s (load in Perfetto or chrome://tracing)\n", chromePath)
		}
	}
	if profile {
		fmt.Fprintln(stdout, "\nprofile:")
		fmt.Fprint(stdout, o.Metrics.ProfileTable())
		if pt := hotg.PhaseTable(o); pt != "" {
			fmt.Fprintln(stdout, "\n\nphase self-time:")
			fmt.Fprint(stdout, pt)
		}
		fmt.Fprintln(stdout)
	}
	if failed {
		return 1
	}
	return 0
}

// writeChrome exports the retained events as a Chrome trace_event file.
func writeChrome(o *hotg.Observer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := hotg.WriteChromeTrace(f, o.Trace.Events()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeSamples saves the engine's IOF store to path atomically (temp file in
// the same directory + rename), so an interrupted save never leaves a
// truncated sample file behind.
func writeSamples(eng *hotg.Engine, path string) error {
	var buf bytes.Buffer
	if err := hotg.SaveSamples(eng, &buf); err != nil {
		return err
	}
	return hotg.WriteFileAtomic(path, buf.Bytes(), 0o644)
}

// compareAll runs every technique (random included) on the workload and
// prints one row per technique. The -workers, -refute, and -summaries flags
// apply to every technique's search (refute and summaries only change
// higher-order behavior but are threaded uniformly).
func compareAll(stdout io.Writer, w *hotg.Workload, runs int, seed int64, workers int, refute, summaries bool) {
	fmt.Fprintf(stdout, "%-20s %-6s %-10s %-6s %-6s %-6s\n", "technique", "runs", "coverage", "paths", "bugs", "div")
	fz := hotg.Fuzz(w.Build(), hotg.FuzzOptions{
		MaxRuns: runs, Seeds: w.Seeds, Bounds: w.Bounds, Rand: rand.New(rand.NewSource(seed)),
	})
	row := func(name string, st *hotg.Stats) {
		fmt.Fprintf(stdout, "%-20s %-6d %3d/%-6d %-6d %-6d %-6d\n", name, st.Runs,
			st.BranchSidesCovered(), st.BranchSidesTotal(), st.Paths(),
			len(st.ErrorSitesFound()), st.Divergences)
	}
	row("blackbox-random", fz)
	for _, m := range []hotg.Mode{
		hotg.ModeStatic, hotg.ModeUnsound, hotg.ModeSound,
		hotg.ModeSoundDelayed, hotg.ModeHigherOrder,
	} {
		wm, _ := hotg.GetWorkload(w.Name)
		eng := hotg.NewEngine(wm.Build(), m)
		if summaries {
			eng.Summaries = hotg.NewSummaryCache()
		}
		st := hotg.Explore(eng, hotg.SearchOptions{
			MaxRuns: runs, Seeds: wm.Seeds, Bounds: wm.Bounds,
			Workers: workers, Refute: refute,
		})
		row(m.String(), st)
	}
}

func parseMode(s string) (hotg.Mode, bool) {
	for _, m := range []hotg.Mode{
		hotg.ModeStatic, hotg.ModeUnsound, hotg.ModeSound,
		hotg.ModeSoundDelayed, hotg.ModeHigherOrder,
	} {
		if m.String() == s {
			return m, true
		}
	}
	return 0, false
}
