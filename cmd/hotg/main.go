// Command hotg runs one test-generation technique on one workload and prints
// a report: coverage, generated tests, divergences, prover statistics, and
// every bug found (with the triggering input).
//
// Usage:
//
//	hotg -list
//	hotg -workload lexer -mode higher-order -runs 300
//	hotg -workload lexer -mode higher-order -runs 300 -workers 8
//	hotg -workload foo -mode dart-unsound -runs 50 -v
//	hotg -workload lexer -runs 300 -profile
//	hotg -workload lexer -runs 300 -trace trace.jsonl -trace-chrome trace.json
//	hotg -workload lexer -runs 300 -proof-timeout 50ms -degrade
//	hotg -workload lexer -runs 300 -budget 2s
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"hotg"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list available workloads and modes")
		workload   = flag.String("workload", "obscure", "workload name (see -list)")
		mode       = flag.String("mode", "higher-order", "technique: static | dart-unsound | dart-sound | dart-sound-delayed | higher-order | random | all")
		runs       = flag.Int("runs", 100, "execution budget")
		refute     = flag.Bool("refute", false, "enable the invalidity prover (higher-order mode)")
		seed       = flag.Int64("seed", 1, "random seed (random mode)")
		verbose    = flag.Bool("v", false, "print every bug input")
		samplesIn  = flag.String("samples-in", "", "load IOF samples from a previous session (JSON)")
		samplesOut = flag.String("samples-out", "", "save the IOF store at exit (JSON)")
		summaries  = flag.Bool("summaries", false, "enable compositional path summaries (higher-order mode)")
		workers    = flag.Int("workers", 0, "worker goroutines for test execution and proving (0 = GOMAXPROCS); results are identical at any count")
		tracePath  = flag.String("trace", "", "write a structured JSONL event trace to this file")
		profile    = flag.Bool("profile", false, "print a metrics profile (latency percentiles, cache traffic) after the run")
		chromePath = flag.String("trace-chrome", "", "write a Chrome trace_event JSON (Perfetto, chrome://tracing) to this file")
		budgetD    = flag.Duration("budget", 0, "wall-clock ceiling for the whole search (0 = unlimited); a fired ceiling returns partial results")
		proofTmo   = flag.Duration("proof-timeout", 0, "wall-clock deadline per validity proof / solver query (0 = unlimited)")
		degrade    = flag.Bool("degrade", false, "retry timed-out higher-order proofs with quantifier-free solving, then plain concretization (see README)")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:")
		for _, w := range hotg.Workloads() {
			fmt.Printf("  %-16s %s\n", w.Name, w.Description)
		}
		fmt.Println("modes: static, dart-unsound, dart-sound, dart-sound-delayed, higher-order, random")
		return
	}

	w, ok := hotg.GetWorkload(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "hotg: unknown workload %q (try -list)\n", *workload)
		os.Exit(2)
	}
	prog := w.Build()

	if *mode == "all" {
		compareAll(w, *runs, *seed, *workers, *refute, *summaries)
		return
	}

	o, traceFile, err := buildObs(*tracePath, *chromePath, *profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotg:", err)
		os.Exit(2)
	}

	var stats *hotg.Stats
	var cache *hotg.SummaryCache
	if *mode == "random" {
		if o != nil {
			fmt.Fprintln(os.Stderr, "hotg: -trace/-profile/-trace-chrome instrument the concolic pipeline and are ignored in random mode")
		}
		stats = hotg.Fuzz(prog, hotg.FuzzOptions{
			MaxRuns: *runs, Seeds: w.Seeds, Bounds: w.Bounds,
			Rand: rand.New(rand.NewSource(*seed)),
		})
	} else {
		m, ok := parseMode(*mode)
		if !ok {
			fmt.Fprintf(os.Stderr, "hotg: unknown mode %q\n", *mode)
			os.Exit(2)
		}
		eng := hotg.NewEngine(prog, m)
		if *summaries {
			cache = hotg.NewSummaryCache()
			eng.Summaries = cache
		}
		if *samplesIn != "" {
			f, err := os.Open(*samplesIn)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hotg:", err)
				os.Exit(2)
			}
			n, err := hotg.LoadSamples(eng, f)
			f.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, "hotg:", err)
				os.Exit(2)
			}
			fmt.Printf("loaded %d samples from %s\n", n, *samplesIn)
		}
		stats = hotg.Explore(eng, hotg.SearchOptions{
			MaxRuns: *runs, Seeds: w.Seeds, Bounds: w.Bounds, Refute: *refute,
			Workers: *workers, Obs: o,
			Budget: hotg.SearchBudget{
				ProofTimeout:  *proofTmo,
				SearchTimeout: *budgetD,
				Degrade:       *degrade,
			},
		})
		if *samplesOut != "" {
			if err := writeSamples(eng, *samplesOut); err != nil {
				fmt.Fprintln(os.Stderr, "hotg:", err)
				os.Exit(2)
			}
			fmt.Printf("saved %d samples to %s\n", eng.Samples.Len(), *samplesOut)
		}
	}

	fmt.Println(stats.Summary())
	if ps := stats.ParallelSummary(); ps != "" {
		fmt.Println(ps)
	}
	if bs := stats.BudgetSummary(); bs != "" {
		fmt.Println(bs)
	}
	if cache != nil {
		fmt.Printf("summaries: hits=%d misses=%d fallbacks=%d cases=%d\n",
			cache.Hits, cache.Misses, cache.Fallbacks, cache.Cases())
	}
	if len(stats.Bugs) == 0 {
		fmt.Println("no bugs found")
	} else {
		fmt.Printf("%d bug(s):\n", len(stats.Bugs))
		for _, b := range stats.Bugs {
			if *verbose {
				fmt.Printf("  run %-5d %-10s %-20q input=%v\n", b.Run, b.Kind, b.Msg, b.Input)
			} else {
				fmt.Printf("  run %-5d %-10s %q\n", b.Run, b.Kind, b.Msg)
			}
		}
	}

	finishObs(o, traceFile, *tracePath, *chromePath, *profile)
}

// buildObs assembles the observer requested by -trace/-profile/-trace-chrome,
// or returns nil when none is set so the search runs on the zero-overhead
// path. The returned file (if any) is the open -trace output, closed by
// finishObs.
func buildObs(tracePath, chromePath string, profile bool) (*hotg.Observer, *os.File, error) {
	if tracePath == "" && chromePath == "" && !profile {
		return nil, nil, nil
	}
	o := hotg.NewObserver()
	var f *os.File
	if tracePath != "" {
		var err error
		f, err = os.Create(tracePath)
		if err != nil {
			return nil, nil, err
		}
		o.Trace = hotg.NewTracer(f)
	} else if chromePath != "" {
		o.Trace = hotg.NewTracer(nil)
	}
	if chromePath != "" {
		o.Trace.Keep()
	}
	return o, f, nil
}

// finishObs flushes and closes the trace outputs and prints the profile.
func finishObs(o *hotg.Observer, traceFile *os.File, tracePath, chromePath string, profile bool) {
	if o == nil {
		return
	}
	failed := false
	if err := o.Trace.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "hotg: trace:", err)
		failed = true
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "hotg: trace:", err)
			failed = true
		} else {
			fmt.Printf("trace written to %s\n", tracePath)
		}
	}
	if chromePath != "" {
		if err := writeChrome(o, chromePath); err != nil {
			fmt.Fprintln(os.Stderr, "hotg: trace-chrome:", err)
			failed = true
		} else {
			fmt.Printf("chrome trace written to %s (load in Perfetto or chrome://tracing)\n", chromePath)
		}
	}
	if profile {
		fmt.Println("\nprofile:")
		fmt.Print(o.Metrics.ProfileTable())
	}
	if failed {
		os.Exit(1)
	}
}

// writeChrome exports the retained events as a Chrome trace_event file.
func writeChrome(o *hotg.Observer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := hotg.WriteChromeTrace(f, o.Trace.Events()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeSamples saves the engine's IOF store to path. The file is closed on
// every path, and close errors are reported: a failed close can silently
// truncate the sample file.
func writeSamples(eng *hotg.Engine, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := hotg.SaveSamples(eng, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// compareAll runs every technique (random included) on the workload and
// prints one row per technique. The -workers, -refute, and -summaries flags
// apply to every technique's search (refute and summaries only change
// higher-order behavior but are threaded uniformly).
func compareAll(w *hotg.Workload, runs int, seed int64, workers int, refute, summaries bool) {
	fmt.Printf("%-20s %-6s %-10s %-6s %-6s %-6s\n", "technique", "runs", "coverage", "paths", "bugs", "div")
	fz := hotg.Fuzz(w.Build(), hotg.FuzzOptions{
		MaxRuns: runs, Seeds: w.Seeds, Bounds: w.Bounds, Rand: rand.New(rand.NewSource(seed)),
	})
	row := func(name string, st *hotg.Stats) {
		fmt.Printf("%-20s %-6d %3d/%-6d %-6d %-6d %-6d\n", name, st.Runs,
			st.BranchSidesCovered(), st.BranchSidesTotal(), st.Paths(),
			len(st.ErrorSitesFound()), st.Divergences)
	}
	row("blackbox-random", fz)
	for _, m := range []hotg.Mode{
		hotg.ModeStatic, hotg.ModeUnsound, hotg.ModeSound,
		hotg.ModeSoundDelayed, hotg.ModeHigherOrder,
	} {
		wm, _ := hotg.GetWorkload(w.Name)
		eng := hotg.NewEngine(wm.Build(), m)
		if summaries {
			eng.Summaries = hotg.NewSummaryCache()
		}
		st := hotg.Explore(eng, hotg.SearchOptions{
			MaxRuns: runs, Seeds: wm.Seeds, Bounds: wm.Bounds,
			Workers: workers, Refute: refute,
		})
		row(m.String(), st)
	}
}

func parseMode(s string) (hotg.Mode, bool) {
	for _, m := range []hotg.Mode{
		hotg.ModeStatic, hotg.ModeUnsound, hotg.ModeSound,
		hotg.ModeSoundDelayed, hotg.ModeHigherOrder,
	} {
		if m.String() == s {
			return m, true
		}
	}
	return 0, false
}
