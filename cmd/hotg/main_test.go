package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

var regen = flag.Bool("regen", false, "regenerate golden files")

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUnknownModeRejected(t *testing.T) {
	code, _, stderr := runCLI(t, "-workload", "foo", "-mode", "nonsense")
	if code == 0 {
		t.Fatal("unknown -mode exited 0")
	}
	if !strings.Contains(stderr, `"nonsense"`) {
		t.Errorf("stderr does not name the bad mode: %q", stderr)
	}
	for _, m := range validModes {
		if !strings.Contains(stderr, m) {
			t.Errorf("stderr does not list valid mode %q: %q", m, stderr)
		}
	}
}

func TestUnknownWorkloadRejected(t *testing.T) {
	code, _, stderr := runCLI(t, "-workload", "nonsense")
	if code == 0 {
		t.Fatal("unknown -workload exited 0")
	}
	if !strings.Contains(stderr, `"nonsense"`) {
		t.Errorf("stderr does not name the bad workload: %q", stderr)
	}
	for _, name := range []string{"obscure", "foo", "lexer"} {
		if !strings.Contains(stderr, name) {
			t.Errorf("stderr does not list valid workload %q: %q", name, stderr)
		}
	}
}

func TestCampaignFlagValidation(t *testing.T) {
	if code, _, _ := runCLI(t, "-workload", "foo", "-resume"); code == 0 {
		t.Error("-resume without -corpus exited 0")
	}
	if code, _, _ := runCLI(t, "-workload", "foo", "-checkpoint-every", "5"); code == 0 {
		t.Error("-checkpoint-every without -corpus exited 0")
	}
	if code, _, _ := runCLI(t, "-workload", "foo", "-mode", "random", "-corpus", t.TempDir()); code == 0 {
		t.Error("-corpus with random mode exited 0")
	}
	dir := t.TempDir()
	if code, _, stderr := runCLI(t, "-workload", "foo", "-corpus", dir, "-resume"); code == 0 {
		t.Error("-resume with no saved checkpoint exited 0")
	} else if !strings.Contains(stderr, "no checkpoint") {
		t.Errorf("unexpected stderr: %q", stderr)
	}
}

// TestCampaignCLIRoundTrip drives the full flag surface: a first session that
// checkpoints into -corpus, then a -resume session over the same directory.
func TestCampaignCLIRoundTrip(t *testing.T) {
	dir := t.TempDir()
	code, stdout, stderr := runCLI(t,
		"-workload", "foo", "-runs", "30", "-corpus", dir, "-checkpoint-every", "2")
	if code != 0 {
		t.Fatalf("first session exited %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "campaign:") {
		t.Errorf("no campaign summary printed:\n%s", stdout)
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		t.Errorf("no manifest committed: %v", err)
	}

	code, stdout, stderr = runCLI(t,
		"-workload", "foo", "-runs", "30", "-corpus", dir, "-checkpoint-every", "2", "-resume")
	if code != 0 {
		t.Fatalf("resume session exited %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "resuming campaign") {
		t.Errorf("resume session did not announce the restored checkpoint:\n%s", stdout)
	}

	// A fresh (non-resume) session over the same corpus seeds from it.
	code, stdout, stderr = runCLI(t, "-workload", "foo", "-runs", "30", "-corpus", dir)
	if code != 0 {
		t.Fatalf("corpus-seeded session exited %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "seeding from corpus") {
		t.Errorf("corpus-seeded session did not use saved inputs:\n%s", stdout)
	}
	if !strings.Contains(stdout, "(0 new)") {
		t.Errorf("corpus-seeded session reported new crash buckets:\n%s", stdout)
	}
}

// TestFuncValGolden pins the stable rendering of function-valued inputs: on
// every callback workload the single-worker higher-order run is canonical, so
// the whole report — including each bug's synthesized decision tables and the
// -samples-out store it leaves behind — is byte-reproducible. Regenerate with
// `go test ./cmd/hotg -run TestFuncValGolden -regen` after an intentional
// trajectory change.
func TestFuncValGolden(t *testing.T) {
	var report bytes.Buffer
	for _, name := range []string{"cb-filter", "cb-sortguard", "cb-fold"} {
		path := filepath.Join(t.TempDir(), "samples.json")
		code, stdout, stderr := runCLI(t, "-workload", name, "-mode", "higher-order",
			"-runs", "40", "-workers", "1", "-v", "-samples-out", path)
		if code != 0 {
			t.Fatalf("%s exited %d\nstderr: %s", name, code, stderr)
		}
		if !strings.Contains(stdout, "funcs=[fn/") {
			t.Fatalf("%s report renders no function inputs:\n%s", name, stdout)
		}
		samples, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&report, "== %s ==\n", name)
		// The samples path is a temp dir; normalize it out of the golden.
		report.WriteString(strings.ReplaceAll(stdout, path, "SAMPLES"))
		report.Write(samples)
	}
	golden := filepath.Join("testdata", "funcval.golden")
	if *regen {
		if err := os.WriteFile(golden, report.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -regen to create)", err)
	}
	if !bytes.Equal(report.Bytes(), want) {
		t.Errorf("function-input report drifted from golden (run with -regen if intended):\ngot:\n%swant:\n%s",
			report.Bytes(), want)
	}
}

func TestSamplesOutAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "samples.json")
	code, _, stderr := runCLI(t, "-workload", "foo", "-runs", "20", "-samples-out", path)
	if code != 0 {
		t.Fatalf("exited %d\nstderr: %s", code, stderr)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("samples file missing: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".") {
			t.Errorf("leftover temp file %q", e.Name())
		}
	}
}

// TestListGolden pins the -list output: workloads sorted by name with their
// descriptions, then the mode ladder. Regenerate with
// `go run ./cmd/hotg -list > cmd/hotg/testdata/list.golden` after adding a
// workload.
func TestListGolden(t *testing.T) {
	code, out, stderr := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d: %s", code, stderr)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "list.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("-list drifted from golden:\ngot:\n%swant:\n%s", out, want)
	}

	// The workload block must be sorted regardless of registration order.
	var names []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "  ") {
			if f := strings.Fields(line); len(f) > 0 {
				names = append(names, f[0])
			}
		}
	}
	if len(names) < 5 {
		t.Fatalf("-list shows %d workloads, expected more", len(names))
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("-list workloads are not sorted: %v", names)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for watching CLI output while
// run() is still executing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestHTTPIntrospectionLive boots the CLI with -http on an ephemeral port and
// hits all four endpoint families while the search is (or has just been)
// running, then checks the run completed cleanly with status lines printed.
func TestHTTPIntrospectionLive(t *testing.T) {
	var out, errb syncBuffer
	codeCh := make(chan int, 1)
	go func() {
		codeCh <- run([]string{
			"-workload", "lexer", "-mode", "higher-order", "-runs", "250",
			"-http", "127.0.0.1:0", "-status-every", "1ms",
		}, &out, &errb)
	}()

	// Wait for the bound address to be announced.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no introspection address announced; stdout so far:\n%s", out.String())
		}
		for _, ln := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(ln, "introspection: http://"); ok {
				addr = strings.TrimSuffix(rest, "/statusz")
			}
		}
		time.Sleep(time.Millisecond)
	}

	// All four endpoint families answer while the process is live.
	for _, path := range []string{"/statusz", "/metrics", "/events", "/debug/pprof/"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Errorf("%s: empty body", path)
		}
	}

	if code := <-codeCh; code != 0 {
		t.Fatalf("run exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "status: ") {
		t.Errorf("-status-every printed no status lines:\n%s", errb.String())
	}

	// The flag still validates: a malformed address is a usage error.
	if code, _, stderr := runCLI(t, "-workload", "lexer", "-runs", "10", "-http", "256.0.0.1:x"); code != 2 ||
		!strings.Contains(stderr, "introspection listen") {
		t.Errorf("bad -http address: code %d, stderr %q", code, stderr)
	}
}

// TestProfilePhaseTable checks -profile now ends with the phase self-time
// attribution.
func TestProfilePhaseTable(t *testing.T) {
	code, stdout, _ := runCLI(t, "-workload", "lexer", "-mode", "higher-order", "-runs", "60", "-profile")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(stdout, "phase self-time:") || !strings.Contains(stdout, "% of search") {
		t.Errorf("missing phase table:\n%s", stdout)
	}
	for _, phase := range []string{"search", "fol", "smt"} {
		if !strings.Contains(stdout, phase) {
			t.Errorf("phase table missing %q", phase)
		}
	}
}
