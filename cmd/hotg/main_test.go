package main

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUnknownModeRejected(t *testing.T) {
	code, _, stderr := runCLI(t, "-workload", "foo", "-mode", "nonsense")
	if code == 0 {
		t.Fatal("unknown -mode exited 0")
	}
	if !strings.Contains(stderr, `"nonsense"`) {
		t.Errorf("stderr does not name the bad mode: %q", stderr)
	}
	for _, m := range validModes {
		if !strings.Contains(stderr, m) {
			t.Errorf("stderr does not list valid mode %q: %q", m, stderr)
		}
	}
}

func TestUnknownWorkloadRejected(t *testing.T) {
	code, _, stderr := runCLI(t, "-workload", "nonsense")
	if code == 0 {
		t.Fatal("unknown -workload exited 0")
	}
	if !strings.Contains(stderr, `"nonsense"`) {
		t.Errorf("stderr does not name the bad workload: %q", stderr)
	}
	for _, name := range []string{"obscure", "foo", "lexer"} {
		if !strings.Contains(stderr, name) {
			t.Errorf("stderr does not list valid workload %q: %q", name, stderr)
		}
	}
}

func TestCampaignFlagValidation(t *testing.T) {
	if code, _, _ := runCLI(t, "-workload", "foo", "-resume"); code == 0 {
		t.Error("-resume without -corpus exited 0")
	}
	if code, _, _ := runCLI(t, "-workload", "foo", "-checkpoint-every", "5"); code == 0 {
		t.Error("-checkpoint-every without -corpus exited 0")
	}
	if code, _, _ := runCLI(t, "-workload", "foo", "-mode", "random", "-corpus", t.TempDir()); code == 0 {
		t.Error("-corpus with random mode exited 0")
	}
	dir := t.TempDir()
	if code, _, stderr := runCLI(t, "-workload", "foo", "-corpus", dir, "-resume"); code == 0 {
		t.Error("-resume with no saved checkpoint exited 0")
	} else if !strings.Contains(stderr, "no checkpoint") {
		t.Errorf("unexpected stderr: %q", stderr)
	}
}

// TestCampaignCLIRoundTrip drives the full flag surface: a first session that
// checkpoints into -corpus, then a -resume session over the same directory.
func TestCampaignCLIRoundTrip(t *testing.T) {
	dir := t.TempDir()
	code, stdout, stderr := runCLI(t,
		"-workload", "foo", "-runs", "30", "-corpus", dir, "-checkpoint-every", "2")
	if code != 0 {
		t.Fatalf("first session exited %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "campaign:") {
		t.Errorf("no campaign summary printed:\n%s", stdout)
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		t.Errorf("no manifest committed: %v", err)
	}

	code, stdout, stderr = runCLI(t,
		"-workload", "foo", "-runs", "30", "-corpus", dir, "-checkpoint-every", "2", "-resume")
	if code != 0 {
		t.Fatalf("resume session exited %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "resuming campaign") {
		t.Errorf("resume session did not announce the restored checkpoint:\n%s", stdout)
	}

	// A fresh (non-resume) session over the same corpus seeds from it.
	code, stdout, stderr = runCLI(t, "-workload", "foo", "-runs", "30", "-corpus", dir)
	if code != 0 {
		t.Fatalf("corpus-seeded session exited %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "seeding from corpus") {
		t.Errorf("corpus-seeded session did not use saved inputs:\n%s", stdout)
	}
	if !strings.Contains(stdout, "(0 new)") {
		t.Errorf("corpus-seeded session reported new crash buckets:\n%s", stdout)
	}
}

func TestSamplesOutAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "samples.json")
	code, _, stderr := runCLI(t, "-workload", "foo", "-runs", "20", "-samples-out", path)
	if code != 0 {
		t.Fatalf("exited %d\nstderr: %s", code, stderr)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("samples file missing: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".") {
			t.Errorf("leftover temp file %q", e.Name())
		}
	}
}

// TestListGolden pins the -list output: workloads sorted by name with their
// descriptions, then the mode ladder. Regenerate with
// `go run ./cmd/hotg -list > cmd/hotg/testdata/list.golden` after adding a
// workload.
func TestListGolden(t *testing.T) {
	code, out, stderr := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d: %s", code, stderr)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "list.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("-list drifted from golden:\ngot:\n%swant:\n%s", out, want)
	}

	// The workload block must be sorted regardless of registration order.
	var names []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "  ") {
			if f := strings.Fields(line); len(f) > 0 {
				names = append(names, f[0])
			}
		}
	}
	if len(names) < 5 {
		t.Fatalf("-list shows %d workloads, expected more", len(names))
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("-list workloads are not sorted: %v", names)
	}
}
