// Command hotg-fleet runs one higher-order test-generation campaign across a
// fleet of local worker processes: a coordinator owns the canonical search
// and the campaign directory, workers serve execution/proof/solver tasks over
// the fleet protocol, and one HTTP port carries both the protocol and the
// live introspection surface (/statusz shows per-worker gauges).
//
// Canonical stats are bit-identical at any fleet size — `-verify-single`
// checks that claim on every run by replaying the search in-process.
//
// Usage:
//
//	hotg-fleet -workload lexer -runs 300 -fleet 4
//	hotg-fleet -workload lexer -runs 300 -fleet 4 -verify-single
//	hotg-fleet -workload lexer -runs 300 -fleet 4 -corpus ./camp -checkpoint-every 50
//	hotg-fleet -workload lexer -runs 300 -fleet 4 -kill-worker-after 2s
//	hotg-fleet -worker -coordinator http://127.0.0.1:8700   (spawned internally)
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"time"

	"flag"

	"hotg"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command; it returns the process exit code so tests can
// drive the CLI without spawning a process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hotg-fleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		// Worker mode (spawned by the coordinator; not for humans).
		workerMode  = fs.Bool("worker", false, "run as a fleet worker (internal; spawned by the coordinator)")
		coordinator = fs.String("coordinator", "", "coordinator base URL (worker mode)")

		workload  = fs.String("workload", "lexer", "workload name (see hotg -list)")
		mode      = fs.String("mode", "higher-order", "concolic technique (any hotg -mode except random/all)")
		runs      = fs.Int("runs", 100, "execution budget")
		fleetN    = fs.Int("fleet", 4, "worker processes to spawn (0 = coordinator computes everything locally)")
		shards    = fs.Int("shards", 0, "shard modulus for task affinity (0 = fleet size)")
		refute    = fs.Bool("refute", false, "enable the invalidity prover")
		workers   = fs.Int("workers", 0, "searcher batch width (0 = GOMAXPROCS); results identical at any width")
		httpAddr  = fs.String("http", "127.0.0.1:0", "address for the fleet protocol + introspection port")
		leaseTmo  = fs.Duration("lease-timeout", 2*time.Second, "task lease before a silent worker's work is reassigned")
		proofTmo  = fs.Duration("proof-timeout", 0, "wall-clock deadline per proof / solver query (0 = unlimited)")
		corpusDir = fs.String("corpus", "", "campaign directory: persist corpus, crash buckets, checkpoints (exclusive-locked)")
		resume    = fs.Bool("resume", false, "resume from the campaign's latest checkpoint (requires -corpus)")
		ckptEvery = fs.Int("checkpoint-every", 0, "checkpoint every N runs into the campaign directory (requires -corpus)")
		verify    = fs.Bool("verify-single", false, "re-run the search single-process and require bit-identical canonical stats")
		killAfter = fs.Duration("kill-worker-after", 0, "chaos drill: SIGKILL one worker this long into the run")
		flightOut = fs.String("flight-dump", "", "on failure, dump the flight-recorder tail (JSONL) to this file")
		verbose   = fs.Bool("v", false, "print every bug input")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *workerMode {
		return runWorker(*coordinator, *workload, *mode, stderr)
	}

	w, ok := hotg.GetWorkload(*workload)
	if !ok {
		fmt.Fprintf(stderr, "hotg-fleet: unknown workload %q (see hotg -list)\n", *workload)
		return 2
	}
	m, ok := parseMode(*mode)
	if !ok {
		fmt.Fprintf(stderr, "hotg-fleet: unknown mode %q\n", *mode)
		return 2
	}
	if *corpusDir == "" && (*resume || *ckptEvery > 0) {
		fmt.Fprintln(stderr, "hotg-fleet: -resume and -checkpoint-every require -corpus")
		return 2
	}
	if *shards <= 0 {
		*shards = *fleetN
	}

	// The observer is always on: fleet gauges and per-worker figures feed
	// /statusz, and the flight recorder gives -flight-dump a tail to save.
	o := hotg.NewObserver()
	o.Trace = hotg.NewTracer(nil)
	o.Trace.WithRecorder(hotg.NewFlightRecorder(hotg.DefaultFlightRecorderSize))

	eng := hotg.NewEngine(w.Build(), m)
	coord := hotg.NewFleetCoordinator(eng, hotg.FleetCoordinatorOptions{
		Workload:     w.Name,
		Shards:       *shards,
		Bounds:       w.Bounds,
		Refute:       *refute,
		ProofTimeout: *proofTmo,
		LeaseTimeout: *leaseTmo,
		Obs:          o,
	})
	addr, shutdown, err := hotg.ServeFleet(*httpAddr, coord, o, hotg.MergeInfo(headlineFrom(o), coord.Info))
	if err != nil {
		fmt.Fprintln(stderr, "hotg-fleet:", err)
		return 2
	}
	defer shutdown()
	fmt.Fprintf(stdout, "coordinator: http://%s/statusz (fleet protocol on /fleet/)\n", addr)

	// Spawn the fleet: this binary re-executed in worker mode. Workers hold
	// no campaign state, so their stdout is noise we keep on stderr.
	procs, err := spawnWorkers(*fleetN, addr, w.Name, m.String(), stderr)
	if err != nil {
		fmt.Fprintln(stderr, "hotg-fleet:", err)
		return 2
	}
	if *killAfter > 0 && len(procs) > 0 {
		victim := procs[0]
		time.AfterFunc(*killAfter, func() {
			fmt.Fprintf(stderr, "hotg-fleet: chaos: SIGKILL worker pid %d\n", victim.Process.Pid)
			_ = victim.Process.Kill()
		})
	}

	opts := hotg.SearchOptions{
		MaxRuns: *runs, Seeds: w.Seeds, Bounds: w.Bounds, Refute: *refute,
		Workers: *workers, Obs: o,
		Budget: hotg.SearchBudget{ProofTimeout: *proofTmo},
	}

	// The campaign directory is single-writer: take the session lock before
	// touching it, so a second coordinator (or a plain hotg session) over the
	// same corpus fails loudly instead of interleaving writes.
	var camp *hotg.Campaign
	if *corpusDir != "" {
		lock, err := hotg.AcquireCampaignLock(*corpusDir)
		if err != nil {
			fmt.Fprintln(stderr, "hotg-fleet:", err)
			return 2
		}
		defer lock.Release()
		camp, err = hotg.OpenCampaign(*corpusDir, w.Name, m.String(), o)
		if err != nil {
			fmt.Fprintln(stderr, "hotg-fleet:", err)
			return 2
		}
		opts.OnRun = camp.RecordRun
		if *ckptEvery > 0 {
			opts.Checkpoint = hotg.CheckpointOptions{Every: *ckptEvery, Sink: camp.SaveCheckpoint}
		}
		if *resume {
			snap, err := camp.LatestCheckpoint()
			if err != nil {
				fmt.Fprintln(stderr, "hotg-fleet:", err)
				return 2
			}
			if snap == nil {
				fmt.Fprintf(stderr, "hotg-fleet: campaign %s has no checkpoint to resume from\n", *corpusDir)
				return 2
			}
			if err := snap.Validate(eng); err != nil {
				fmt.Fprintln(stderr, "hotg-fleet:", err)
				return 2
			}
			opts.Restore = snap
			fmt.Fprintf(stdout, "resuming campaign %s at run %d (session %d)\n", *corpusDir, snap.Runs, camp.Session)
		} else if seeds := camp.SeedInputs(0); len(seeds) > 0 {
			opts.Seeds = seeds
			fmt.Fprintf(stdout, "seeding from corpus: %d ranked inputs (session %d)\n", len(seeds), camp.Session)
		}
	}

	stats := coord.Run(opts)

	// Run retired the fleet; give workers a moment to see the retire op and
	// exit, then reap whatever is left.
	reapWorkers(procs, 10*time.Second, stderr)

	failed := false
	if stats.DispatchError != "" {
		fmt.Fprintf(stderr, "hotg-fleet: dispatch error: %s\n", stats.DispatchError)
		failed = true
	}
	if camp != nil {
		if err := camp.Commit(); err != nil {
			fmt.Fprintln(stderr, "hotg-fleet:", err)
			failed = true
		}
		fmt.Fprintf(stdout, "campaign: %d corpus entries, %d crash buckets (%d new), %d checkpoints\n",
			len(camp.Entries()), len(camp.Buckets()), camp.NewBuckets(), stats.Checkpoints)
	}

	fmt.Fprintln(stdout, stats.Summary())
	if len(stats.Bugs) == 0 {
		fmt.Fprintln(stdout, "no bugs found")
	} else {
		fmt.Fprintf(stdout, "%d bug(s):\n", len(stats.Bugs))
		for _, b := range stats.Bugs {
			if *verbose {
				fmt.Fprintf(stdout, "  run %-5d %-10s %-20q input=%v\n", b.Run, b.Kind, b.Msg, b.Input)
			} else {
				fmt.Fprintf(stdout, "  run %-5d %-10s %q\n", b.Run, b.Kind, b.Msg)
			}
		}
	}

	if *verify && !failed {
		if err := verifySingle(w, m, opts, stats); err != nil {
			fmt.Fprintln(stderr, "hotg-fleet: verify-single FAILED:", err)
			failed = true
		} else {
			fmt.Fprintln(stdout, "verify-single: canonical stats identical to single-process run")
		}
	}

	if failed {
		if *flightOut != "" {
			if err := dumpFlight(o, *flightOut); err != nil {
				fmt.Fprintln(stderr, "hotg-fleet: flight dump:", err)
			} else {
				fmt.Fprintf(stderr, "hotg-fleet: flight recorder dumped to %s\n", *flightOut)
			}
		}
		return 1
	}
	return 0
}

// runWorker is the whole worker mode: join, serve, exit.
func runWorker(coordinator, workload, mode string, stderr io.Writer) int {
	if coordinator == "" {
		fmt.Fprintln(stderr, "hotg-fleet: -worker requires -coordinator")
		return 2
	}
	if err := hotg.RunFleetWorker(hotg.FleetWorkerOptions{
		Coordinator: coordinator,
		Workload:    workload,
		Mode:        mode,
	}); err != nil {
		fmt.Fprintln(stderr, "hotg-fleet: worker:", err)
		return 1
	}
	return 0
}

// spawnWorkers re-executes this binary n times in worker mode against the
// bound coordinator address.
func spawnWorkers(n int, addr, workload, mode string, stderr io.Writer) ([]*exec.Cmd, error) {
	if n == 0 {
		return nil, nil
	}
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("locating own binary: %w", err)
	}
	procs := make([]*exec.Cmd, 0, n)
	for i := 0; i < n; i++ {
		cmd := exec.Command(self,
			"-worker", "-coordinator", "http://"+addr,
			"-workload", workload, "-mode", mode)
		cmd.Stdout = stderr
		cmd.Stderr = stderr
		if err := cmd.Start(); err != nil {
			for _, p := range procs {
				_ = p.Process.Kill()
			}
			return nil, fmt.Errorf("spawning worker %d: %w", i, err)
		}
		procs = append(procs, cmd)
	}
	return procs, nil
}

// reapWorkers waits for retired workers to exit, SIGKILLing stragglers after
// the grace period. Exit codes are informational only — a killed worker is a
// scenario the coordinator already absorbed.
func reapWorkers(procs []*exec.Cmd, grace time.Duration, stderr io.Writer) {
	deadline := time.After(grace)
	done := make(chan int, len(procs))
	for i, p := range procs {
		go func(slot int, cmd *exec.Cmd) {
			_ = cmd.Wait()
			done <- slot
		}(i, p)
	}
	remaining := len(procs)
	for remaining > 0 {
		select {
		case <-done:
			remaining--
		case <-deadline:
			for _, p := range procs {
				if p.ProcessState == nil {
					fmt.Fprintf(stderr, "hotg-fleet: worker pid %d did not retire in time; killing\n", p.Process.Pid)
					_ = p.Process.Kill()
				}
			}
			for remaining > 0 {
				<-done
				remaining--
			}
		}
	}
}

// verifySingle replays the search in a fresh engine with no dispatcher and
// compares canonical stats byte-for-byte — the fleet's load-bearing
// invariant, checked on demand against the real run.
func verifySingle(w *hotg.Workload, m hotg.Mode, opts hotg.SearchOptions, fleetStats *hotg.Stats) error {
	opts.Obs = nil
	opts.OnRun = nil
	opts.Checkpoint = hotg.CheckpointOptions{}
	single := hotg.Explore(hotg.NewEngine(w.Build(), m), opts)
	want, err := single.Canonical()
	if err != nil {
		return err
	}
	got, err := fleetStats.Canonical()
	if err != nil {
		return err
	}
	if string(want) != string(got) {
		return fmt.Errorf("canonical stats diverged:\nsingle-process: %s\nfleet:          %s", want, got)
	}
	return nil
}

// dumpFlight writes the flight recorder's tail as JSONL.
func dumpFlight(o *hotg.Observer, path string) error {
	rec := o.Trace.Recorder()
	if rec == nil {
		return fmt.Errorf("no flight recorder attached")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, ev := range rec.Snapshot() {
		if err := enc.Encode(ev); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// headlineFrom mirrors cmd/hotg's /statusz headline: the search's live
// progress gauges.
func headlineFrom(o *hotg.Observer) func() map[string]int64 {
	return func() map[string]int64 {
		return map[string]int64{
			"runs":           o.Metrics.Get("search.live.runs"),
			"runs_remaining": o.Metrics.Get("search.live.runs_remaining"),
			"tests":          o.Metrics.Get("search.live.tests"),
			"bugs":           o.Metrics.Get("search.live.bugs"),
			"frontier_hot":   o.Metrics.Get("search.frontier.hot"),
			"frontier_cold":  o.Metrics.Get("search.frontier.cold"),
		}
	}
}

func parseMode(s string) (hotg.Mode, bool) {
	for _, m := range []hotg.Mode{
		hotg.ModeStatic, hotg.ModeUnsound, hotg.ModeSound,
		hotg.ModeSoundDelayed, hotg.ModeHigherOrder,
	} {
		if m.String() == s {
			return m, true
		}
	}
	return 0, false
}
