package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunWorkerlessVerify drives the whole CLI with -fleet 0 (every task
// absorbed by local fallback) and -verify-single: the canonical stats must
// match a plain in-process search byte-for-byte.
func TestRunWorkerlessVerify(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-workload", "foo", "-runs", "40", "-fleet", "0", "-shards", "2",
		"-lease-timeout", "100ms", "-verify-single",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "verify-single: canonical stats identical") {
		t.Fatalf("verification line missing:\n%s", out.String())
	}
}

// TestRunCampaignLocking: the coordinator locks the campaign directory for
// the session and releases it at exit, so back-to-back sessions work and the
// lock file does not linger.
func TestRunCampaignLocking(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "camp")
	for session := 1; session <= 2; session++ {
		var out, errb bytes.Buffer
		code := run([]string{
			"-workload", "foo", "-runs", "30", "-fleet", "0",
			"-lease-timeout", "100ms", "-corpus", dir, "-checkpoint-every", "10",
		}, &out, &errb)
		if code != 0 {
			t.Fatalf("session %d: exit %d\nstderr: %s", session, code, errb.String())
		}
		if _, err := os.Stat(filepath.Join(dir, "LOCK")); !os.IsNotExist(err) {
			t.Fatalf("session %d: lock file still present after exit (stat err %v)", session, err)
		}
	}
}

// TestRunFlagErrors: the usual refusals exit 2 before any work happens.
func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-workload", "no-such-workload"},
		{"-mode", "random"},
		{"-resume"},
		{"-worker"}, // no -coordinator
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, errb.String())
		}
	}
}
