// Command doclint enforces the repository's godoc conventions:
//
//   - every package (including commands) carries a package comment, and
//   - every exported top-level symbol in the public facade (the root hotg
//     package) carries a doc comment.
//
// It is wired into `make lint`, so drift between the code and its godoc is a
// build failure, not a review nit. Usage:
//
//	doclint [-exported dir]... [dir]
//
// The positional dir (default ".") is walked recursively for the package-
// comment check; each -exported dir (default the walk root, non-recursive)
// additionally requires docs on all exported declarations.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs2 := flag.NewFlagSet("doclint", flag.ContinueOnError)
	fs2.SetOutput(stderr)
	var exported stringList
	fs2.Var(&exported, "exported", "directory whose exported symbols must all have godoc (repeatable; default: the walk root)")
	if err := fs2.Parse(args); err != nil {
		return 2
	}
	root := "."
	if fs2.NArg() > 0 {
		root = fs2.Arg(0)
	}
	if len(exported) == 0 {
		exported = stringList{root}
	}

	var problems []string
	dirs, err := goDirs(root)
	if err != nil {
		fmt.Fprintf(stderr, "doclint: %v\n", err)
		return 2
	}
	for _, dir := range dirs {
		probs, err := lintDir(dir, contains(exported, dir))
		if err != nil {
			fmt.Fprintf(stderr, "doclint: %s: %v\n", dir, err)
			return 2
		}
		problems = append(problems, probs...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Fprintln(stdout, p)
		}
		fmt.Fprintf(stderr, "doclint: %d problem(s)\n", len(problems))
		return 1
	}
	return 0
}

func contains(dirs []string, dir string) bool {
	for _, d := range dirs {
		if filepath.Clean(d) == filepath.Clean(dir) {
			return true
		}
	}
	return false
}

// goDirs returns every directory under root that holds non-test Go files,
// skipping hidden directories and testdata.
func goDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

// lintDir parses one directory and reports missing package comments, plus —
// when wantExported — missing doc comments on exported declarations.
func lintDir(dir string, wantExported bool) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		hasDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				hasDoc = true
			}
		}
		if !hasDoc {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, name))
		}
		if !wantExported {
			continue
		}
		files := make([]string, 0, len(pkg.Files))
		for fname := range pkg.Files {
			files = append(files, fname)
		}
		sort.Strings(files)
		for _, fname := range files {
			problems = append(problems, lintExported(fset, pkg.Files[fname])...)
		}
	}
	return problems, nil
}

// lintExported reports exported top-level declarations without doc comments.
func lintExported(fset *token.FileSet, f *ast.File) []string {
	var problems []string
	missing := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				missing(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						missing(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							missing(n.Pos(), declKind(d.Tok), n.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

func declKind(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
