package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestMissingPackageComment: a package without a package comment is a lint
// failure anywhere in the tree.
func TestMissingPackageComment(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "sub", "a.go"), "package sub\n\nfunc f() {}\n")
	var out, errb bytes.Buffer
	if code := run([]string{dir}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "no package comment") {
		t.Fatalf("missing diagnostic:\n%s", out.String())
	}
}

// TestExportedDocEnforcedOnlyWhereAsked: undocumented exported symbols fail in
// -exported directories and pass elsewhere.
func TestExportedDocEnforcedOnlyWhereAsked(t *testing.T) {
	dir := t.TempDir()
	src := "// Package p is documented.\npackage p\n\nfunc Exported() {}\n\ntype T struct{}\n\nconst C = 1\n"
	write(t, filepath.Join(dir, "p.go"), src)

	var out, errb bytes.Buffer
	if code := run([]string{"-exported", dir, dir}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errb.String())
	}
	for _, want := range []string{"exported function Exported", "exported type T", "exported const C"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q in:\n%s", want, out.String())
		}
	}

	// Same tree, but exported-doc enforcement pointed elsewhere: only the
	// package-comment rule applies, and it is satisfied.
	other := t.TempDir()
	write(t, filepath.Join(other, "q.go"), "// Package q is documented.\npackage q\n")
	out.Reset()
	errb.Reset()
	if code := run([]string{"-exported", other, dir}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}

// TestDocumentedTreePasses: a fully documented package is clean, including
// grouped decls where the group comment covers the specs.
func TestDocumentedTreePasses(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "p.go"), `// Package p is documented.
package p

// Exported does nothing.
func Exported() {}

// Limits for the demo.
const (
	Lo = 1
	Hi = 2
)
`)
	var out, errb bytes.Buffer
	if code := run([]string{"-exported", dir, dir}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}
