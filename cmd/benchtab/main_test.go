package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var regen = flag.Bool("regen", false, "regenerate golden files")

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestJSONShapeGolden pins the machine-readable interface of -json against a
// golden key set: every emitted key must be known (additions are a conscious
// golden update), and the always-present core must be there. Values are not
// pinned — timings vary — but types and the table payload are checked.
func TestJSONShapeGolden(t *testing.T) {
	code, out, stderr := runCLI(t, "-quick", "-json", "E7")
	if code != 0 {
		t.Fatalf("benchtab exited %d\nstderr: %s", code, stderr)
	}

	var results []map[string]any
	if err := json.Unmarshal([]byte(out), &results); err != nil {
		t.Fatalf("-json output is not a JSON array: %v", err)
	}
	if len(results) != 1 {
		t.Fatalf("selected one experiment, got %d results", len(results))
	}
	res := results[0]

	var keys []string
	for k := range res {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	got := strings.Join(keys, "\n") + "\n"

	golden := filepath.Join("testdata", "json_keys.golden")
	if *regen {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -regen to create)", err)
	}
	if got != string(want) {
		t.Errorf("-json key set drifted from golden:\ngot:\n%swant:\n%s", got, want)
	}

	if res["id"] != "E7" {
		t.Errorf("id = %v, want E7", res["id"])
	}
	for _, k := range []string{"seconds", "wall_seconds", "solve_seconds", "workers"} {
		if _, ok := res[k].(float64); !ok {
			t.Errorf("%s is %T, want a number", k, res[k])
		}
	}
	tab, ok := res["table"].(map[string]any)
	if !ok {
		t.Fatalf("table is %T, want an object", res["table"])
	}
	for _, k := range []string{"ID", "Title", "Columns", "Rows", "Claims"} {
		if _, ok := tab[k]; !ok {
			t.Errorf("table payload is missing %q", k)
		}
	}
	if _, ok := res["failed"]; ok {
		t.Error("quick E7 reported failed claims; the claim set regressed")
	}
}

// TestJSONShapeGoldenServe pins the serve-specific -json keys on the A8 row:
// serve_p50_ms, serve_p99_ms, and sessions_evicted must appear (they are
// omitempty, so only an experiment that actually runs the campaign server
// emits them).
func TestJSONShapeGoldenServe(t *testing.T) {
	code, out, stderr := runCLI(t, "-quick", "-json", "A8")
	if code != 0 {
		t.Fatalf("benchtab exited %d\nstderr: %s", code, stderr)
	}
	var results []map[string]any
	if err := json.Unmarshal([]byte(out), &results); err != nil {
		t.Fatalf("-json output is not a JSON array: %v", err)
	}
	if len(results) != 1 {
		t.Fatalf("selected one experiment, got %d results", len(results))
	}
	res := results[0]

	var keys []string
	for k := range res {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	got := strings.Join(keys, "\n") + "\n"

	golden := filepath.Join("testdata", "json_keys_serve.golden")
	if *regen {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -regen to create)", err)
	}
	if got != string(want) {
		t.Errorf("A8 -json key set drifted from golden:\ngot:\n%swant:\n%s", got, want)
	}
	for _, k := range []string{"serve_p50_ms", "serve_p99_ms", "sessions_evicted"} {
		v, ok := res[k].(float64)
		if !ok || v <= 0 {
			t.Errorf("%s = %v, want a positive number on the A8 row", k, res[k])
		}
	}
	if _, ok := res["failed"]; ok {
		t.Error("quick A8 reported failed claims; the claim set regressed")
	}
}

// TestJSONShapeGoldenE16 pins the callback-synthesis keys on the E16 row:
// callback_targets and funcs_synthesized must appear (omitempty, so only an
// experiment that actually discharges callback targets emits them).
func TestJSONShapeGoldenE16(t *testing.T) {
	code, out, stderr := runCLI(t, "-quick", "-json", "E16")
	if code != 0 {
		t.Fatalf("benchtab exited %d\nstderr: %s", code, stderr)
	}
	var results []map[string]any
	if err := json.Unmarshal([]byte(out), &results); err != nil {
		t.Fatalf("-json output is not a JSON array: %v", err)
	}
	if len(results) != 1 {
		t.Fatalf("selected one experiment, got %d results", len(results))
	}
	res := results[0]

	var keys []string
	for k := range res {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	got := strings.Join(keys, "\n") + "\n"

	golden := filepath.Join("testdata", "json_keys_e16.golden")
	if *regen {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -regen to create)", err)
	}
	if got != string(want) {
		t.Errorf("E16 -json key set drifted from golden:\ngot:\n%swant:\n%s", got, want)
	}
	for _, k := range []string{"callback_targets", "funcs_synthesized"} {
		v, ok := res[k].(float64)
		if !ok || v <= 0 {
			t.Errorf("%s = %v, want a positive number on the E16 row", k, res[k])
		}
	}
	if _, ok := res["failed"]; ok {
		t.Error("quick E16 reported failed claims; the claim set regressed")
	}
}

// TestJSONEmptySelection pins the edge the docs promise: -json always emits
// an array, even when nothing is selected.
func TestJSONEmptySelection(t *testing.T) {
	code, out, _ := runCLI(t, "-json", "NOPE")
	if code != 0 {
		t.Fatalf("empty selection exited %d", code)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("empty selection output %q, want []", out)
	}
}

// TestBadFlagExitsUsage checks flag errors exit 2 without running anything.
func TestBadFlagExitsUsage(t *testing.T) {
	if code, _, _ := runCLI(t, "-nonsense"); code != 2 {
		t.Error("bad flag should exit 2")
	}
}

// TestDiffGate exercises the perf-regression gate on synthetic fixtures:
// self-comparison passes, a regressed run fails (naming the regression and
// the baseline experiment the new run dropped), the noise floor forgives
// deltas too small to measure.
func TestDiffGate(t *testing.T) {
	old := filepath.Join("testdata", "diff_old.json")
	regressed := filepath.Join("testdata", "diff_new_regressed.json")

	// Self-comparison: identical numbers never regress.
	code, out, stderr := runCLI(t, "-diff", old, old)
	if code != 0 {
		t.Fatalf("self-diff exited %d\nstdout: %s\nstderr: %s", code, out, stderr)
	}
	if !strings.Contains(out, "no solver-time regressions") {
		t.Errorf("self-diff verdict missing: %q", out)
	}

	// Synthetic regression: E2 more than doubles (fails the 25% gate), E1's
	// +10% and E3's 4x-but-tiny stay under the relative/absolute bars, A1
	// vanishes (fails), A7 is new (informational).
	code, out, stderr = runCLI(t, "-diff", old, regressed)
	if code != 1 {
		t.Fatalf("regressed diff exited %d, want 1\nstdout: %s\nstderr: %s", code, out, stderr)
	}
	for _, want := range []string{"REGRESSION", "MISSING", "new experiment"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
	for _, ln := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(ln, "E1"), strings.HasPrefix(ln, "E3"):
			if !strings.Contains(ln, "ok") {
				t.Errorf("%s should pass under floor/threshold: %q", ln[:2], ln)
			}
		case strings.HasPrefix(ln, "E2"):
			if !strings.Contains(ln, "REGRESSION") {
				t.Errorf("E2 should regress: %q", ln)
			}
		case strings.HasPrefix(ln, "A1"):
			if !strings.Contains(ln, "MISSING") {
				t.Errorf("A1 should be missing: %q", ln)
			}
		}
	}
	if !strings.Contains(stderr, "2 experiment(s) regressed or missing") {
		t.Errorf("stderr verdict wrong: %q", stderr)
	}

	// A tighter threshold flips E1's +10% into a regression.
	if code, out, _ = runCLI(t, "-diff", "-threshold", "0.05", "-min-seconds", "0.01", old, regressed); code != 1 {
		t.Fatalf("tight-threshold diff exited %d", code)
	} else if !strings.Contains(out, "REGRESSION (>5%)") {
		t.Errorf("threshold not honored:\n%s", out)
	}

	// Usage errors.
	if code, _, _ := runCLI(t, "-diff", old); code != 2 {
		t.Error("-diff with one file should exit 2")
	}
	if code, _, _ := runCLI(t, "-diff", old, filepath.Join("testdata", "nonexistent.json")); code != 2 {
		t.Error("-diff with unreadable file should exit 2")
	}
}

// TestDiffSelfOnRealRun feeds the gate its own fresh -json output — the exact
// self-comparison CI performs against the committed baseline's format.
func TestDiffSelfOnRealRun(t *testing.T) {
	code, out, stderr := runCLI(t, "-quick", "-json", "E7")
	if code != 0 {
		t.Fatalf("benchtab exited %d\nstderr: %s", code, stderr)
	}
	path := filepath.Join(t.TempDir(), "run.json")
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out, stderr := runCLI(t, "-diff", path, path); code != 0 {
		t.Fatalf("self-diff of a real run exited %d\nstdout: %s\nstderr: %s", code, out, stderr)
	}
}
