package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var regen = flag.Bool("regen", false, "regenerate golden files")

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestJSONShapeGolden pins the machine-readable interface of -json against a
// golden key set: every emitted key must be known (additions are a conscious
// golden update), and the always-present core must be there. Values are not
// pinned — timings vary — but types and the table payload are checked.
func TestJSONShapeGolden(t *testing.T) {
	code, out, stderr := runCLI(t, "-quick", "-json", "E7")
	if code != 0 {
		t.Fatalf("benchtab exited %d\nstderr: %s", code, stderr)
	}

	var results []map[string]any
	if err := json.Unmarshal([]byte(out), &results); err != nil {
		t.Fatalf("-json output is not a JSON array: %v", err)
	}
	if len(results) != 1 {
		t.Fatalf("selected one experiment, got %d results", len(results))
	}
	res := results[0]

	var keys []string
	for k := range res {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	got := strings.Join(keys, "\n") + "\n"

	golden := filepath.Join("testdata", "json_keys.golden")
	if *regen {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -regen to create)", err)
	}
	if got != string(want) {
		t.Errorf("-json key set drifted from golden:\ngot:\n%swant:\n%s", got, want)
	}

	if res["id"] != "E7" {
		t.Errorf("id = %v, want E7", res["id"])
	}
	for _, k := range []string{"seconds", "wall_seconds", "solve_seconds", "workers"} {
		if _, ok := res[k].(float64); !ok {
			t.Errorf("%s is %T, want a number", k, res[k])
		}
	}
	tab, ok := res["table"].(map[string]any)
	if !ok {
		t.Fatalf("table is %T, want an object", res["table"])
	}
	for _, k := range []string{"ID", "Title", "Columns", "Rows", "Claims"} {
		if _, ok := tab[k]; !ok {
			t.Errorf("table payload is missing %q", k)
		}
	}
	if _, ok := res["failed"]; ok {
		t.Error("quick E7 reported failed claims; the claim set regressed")
	}
}

// TestJSONEmptySelection pins the edge the docs promise: -json always emits
// an array, even when nothing is selected.
func TestJSONEmptySelection(t *testing.T) {
	code, out, _ := runCLI(t, "-json", "NOPE")
	if code != 0 {
		t.Fatalf("empty selection exited %d", code)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("empty selection output %q, want []", out)
	}
}

// TestBadFlagExitsUsage checks flag errors exit 2 without running anything.
func TestBadFlagExitsUsage(t *testing.T) {
	if code, _, _ := runCLI(t, "-nonsense"); code != 2 {
		t.Error("bad flag should exit 2")
	}
}
