// Command benchtab regenerates every table and figure of EXPERIMENTS.md:
// one experiment per artifact of the paper's evaluation, each with
// machine-checked claims mirroring the paper's qualitative statements.
//
// Usage:
//
//	benchtab                 # run the full suite with default budgets
//	benchtab -quick          # CI-sized budgets
//	benchtab -budget 3000    # bigger lexer budget
//	benchtab E12 E13         # selected experiments only
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hotg"
)

func main() {
	var (
		quick  = flag.Bool("quick", false, "CI-sized budgets")
		budget = flag.Int("budget", 0, "execution budget for the lexer experiments (default 1500)")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := hotg.ExperimentConfig{Quick: *quick, Budget: *budget, Seed: *seed}

	selected := flag.Args()
	run := func(e hotg.Experiment) bool {
		if len(selected) == 0 {
			return true
		}
		for _, id := range selected {
			if id == e.ID {
				return true
			}
		}
		return false
	}

	failures := 0
	for _, e := range hotg.Experiments() {
		if !run(e) {
			continue
		}
		t0 := time.Now()
		tab := e.Run(cfg)
		fmt.Println(tab.Render())
		fmt.Printf("(%s finished in %.1fs)\n\n", e.ID, time.Since(t0).Seconds())
		failures += len(tab.Failed())
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchtab: %d claim(s) FAILED\n", failures)
		os.Exit(1)
	}
}
