// Command benchtab regenerates every table and figure of EXPERIMENTS.md:
// one experiment per artifact of the paper's evaluation, each with
// machine-checked claims mirroring the paper's qualitative statements.
//
// Usage:
//
//	benchtab                 # run the full suite with default budgets
//	benchtab -quick          # CI-sized budgets
//	benchtab -budget 3000    # bigger lexer budget
//	benchtab E12 E13         # selected experiments only
//	benchtab -json E12       # machine-readable results on stdout
//	benchtab -proof-timeout 5ms -degrade A4   # budgeted runs (see DESIGN.md §8)
//	benchtab -diff old.json new.json          # perf-regression gate over two -json files
//	benchtab -diff -threshold 0.10 old.json new.json
//
// The budget flags apply to every search an experiment runs. Degraded rungs
// are allowed to diverge (DESIGN.md §8), so under tight budgets some claims
// that assume full-precision higher-order reasoning (e.g. E12's "never
// diverges") can legitimately fail — benchtab then exits nonzero, as for any
// failed claim. The checked-in EXPERIMENTS.md is generated unbudgeted.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hotg"
)

// jsonResult is the machine-readable form of one experiment run. The headline
// observability numbers are hoisted to top-level fields; Metrics carries the
// experiment's full metric snapshot (fresh registry per experiment).
type jsonResult struct {
	ID               string             `json:"id"`
	Seconds          float64            `json:"seconds"`
	Workers          int64              `json:"workers"`
	ProofCacheHits   int64              `json:"proof_cache_hits"`
	ProofCacheMisses int64              `json:"proof_cache_misses"`
	WallSeconds      float64            `json:"wall_seconds"`
	SolveSeconds     float64            `json:"solve_seconds"`
	SolverPushes     int64              `json:"solver_pushes"`
	ClausesRetained  int64              `json:"clauses_retained"`
	WarmstartHits    int64              `json:"warmstart_hits"`
	ProofTimeouts    int64              `json:"proof_timeouts,omitempty"`
	Degraded         int64              `json:"degraded,omitempty"`
	TestsProof       int64              `json:"tests_proof,omitempty"`
	TestsQF          int64              `json:"tests_qf,omitempty"`
	TestsConcretize  int64              `json:"tests_concretize,omitempty"`
	CorpusEntries    int64              `json:"corpus_entries,omitempty"`
	CorpusDedup      int64              `json:"corpus_dedup_hits,omitempty"`
	CrashBuckets     int64              `json:"crash_buckets,omitempty"`
	TriageDedup      int64              `json:"triage_dedup_hits,omitempty"`
	Checkpoints      int64              `json:"checkpoints_saved,omitempty"`
	ServeP50MS       int64              `json:"serve_p50_ms,omitempty"`
	ServeP99MS       int64              `json:"serve_p99_ms,omitempty"`
	SessionsEvicted  int64              `json:"sessions_evicted,omitempty"`
	CallbackTargets  int64              `json:"callback_targets,omitempty"`
	FuncsSynthesized int64              `json:"funcs_synthesized,omitempty"`
	Failed           []string           `json:"failed,omitempty"`
	Table            *hotg.Table        `json:"table"`
	Metrics          []hotg.MetricValue `json:"metrics,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command; it returns the process exit code so tests can
// drive the CLI without spawning a process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		quick    = fs.Bool("quick", false, "CI-sized budgets")
		budget   = fs.Int("budget", 0, "execution budget for the lexer experiments (default 1500)")
		seed     = fs.Int64("seed", 1, "random seed")
		jsonOut  = fs.Bool("json", false, "emit one JSON array of results instead of rendered tables")
		proofTmo = fs.Duration("proof-timeout", 0, "per-proof wall-clock deadline applied to every search (0 = unlimited)")
		degrade  = fs.Bool("degrade", false, "degrade cut-short proofs down the precision ladder (DESIGN.md §8)")
		diffMode = fs.Bool("diff", false, "compare two -json result files (old new) and exit 1 on solver-time regression")
		thresh   = fs.Float64("threshold", 0.25, "relative solve-time regression threshold for -diff (0.25 = 25%)")
		minSecs  = fs.Float64("min-seconds", 0.05, "absolute noise floor for -diff: deltas below this many seconds never regress")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *diffMode {
		if fs.NArg() != 2 {
			fmt.Fprintln(stderr, "benchtab: -diff needs exactly two arguments: old.json new.json")
			return 2
		}
		return runDiff(fs.Arg(0), fs.Arg(1), *thresh, *minSecs, stdout, stderr)
	}

	baseCfg := hotg.ExperimentConfig{
		Quick: *quick, Budget: *budget, Seed: *seed,
		ProofTimeout: *proofTmo, Degrade: *degrade,
	}

	selected := fs.Args()
	run := func(e hotg.Experiment) bool {
		if len(selected) == 0 {
			return true
		}
		for _, id := range selected {
			if id == e.ID {
				return true
			}
		}
		return false
	}

	failures := 0
	results := []jsonResult{} // non-nil so -json always emits an array
	for _, e := range hotg.Experiments() {
		if !run(e) {
			continue
		}
		cfg := baseCfg
		if *jsonOut {
			// A fresh registry per experiment, so each snapshot reflects only
			// this experiment's searches.
			cfg.Obs = hotg.NewObserver()
		}
		t0 := time.Now()
		tab := e.Run(cfg)
		secs := time.Since(t0).Seconds()
		var failed []string
		for _, c := range tab.Failed() {
			failed = append(failed, c.Text)
		}
		failures += len(failed)
		if *jsonOut {
			m := cfg.Obs.Metrics
			results = append(results, jsonResult{
				ID:               e.ID,
				Seconds:          secs,
				Workers:          m.Get("search.workers"),
				ProofCacheHits:   m.Get("search.proof_cache.hits"),
				ProofCacheMisses: m.Get("search.proof_cache.misses"),
				WallSeconds:      float64(m.Get("search.wall_ns")) / 1e9,
				SolveSeconds:     float64(m.Get("search.solve_ns")) / 1e9,
				SolverPushes:     m.Get("smt.ctx.pushes"),
				ClausesRetained:  m.Get("smt.ctx.clauses_retained"),
				WarmstartHits:    m.Get("smt.ctx.warmstart_hits"),
				ProofTimeouts:    m.Get("search.budget.proof_timeouts"),
				Degraded:         m.Get("search.budget.degraded_qf") + m.Get("search.budget.degraded_concretize"),
				TestsProof:       m.Get("search.budget.tests.proof"),
				TestsQF:          m.Get("search.budget.tests.qf"),
				TestsConcretize:  m.Get("search.budget.tests.concretize"),
				CorpusEntries:    m.Get("campaign.corpus.entries"),
				CorpusDedup:      m.Get("campaign.corpus.dedup_hits"),
				CrashBuckets:     m.Get("campaign.triage.buckets"),
				TriageDedup:      m.Get("campaign.triage.dedup_hits"),
				Checkpoints:      m.Get("campaign.checkpoints.saved"),
				ServeP50MS:       m.Get("serve.p50_ms"),
				ServeP99MS:       m.Get("serve.p99_ms"),
				SessionsEvicted:  m.Get("serve.evicted"),
				CallbackTargets:  m.Get("search.callback.targets"),
				FuncsSynthesized: m.Get("search.callback.funcs_synthesized"),
				Failed:           failed,
				Table:            tab,
				Metrics:          m.Snapshot(),
			})
			continue
		}
		fmt.Fprintln(stdout, tab.Render())
		fmt.Fprintf(stdout, "(%s finished in %.1fs)\n\n", e.ID, secs)
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(stderr, "benchtab:", err)
			return 1
		}
	}
	if failures > 0 {
		fmt.Fprintf(stderr, "benchtab: %d claim(s) FAILED\n", failures)
		return 1
	}
	return 0
}
