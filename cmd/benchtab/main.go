// Command benchtab regenerates every table and figure of EXPERIMENTS.md:
// one experiment per artifact of the paper's evaluation, each with
// machine-checked claims mirroring the paper's qualitative statements.
//
// Usage:
//
//	benchtab                 # run the full suite with default budgets
//	benchtab -quick          # CI-sized budgets
//	benchtab -budget 3000    # bigger lexer budget
//	benchtab E12 E13         # selected experiments only
//	benchtab -json E12       # machine-readable results on stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"hotg"
)

// jsonResult is the machine-readable form of one experiment run.
type jsonResult struct {
	ID      string      `json:"id"`
	Seconds float64     `json:"seconds"`
	Failed  []string    `json:"failed,omitempty"`
	Table   *hotg.Table `json:"table"`
}

func main() {
	var (
		quick   = flag.Bool("quick", false, "CI-sized budgets")
		budget  = flag.Int("budget", 0, "execution budget for the lexer experiments (default 1500)")
		seed    = flag.Int64("seed", 1, "random seed")
		jsonOut = flag.Bool("json", false, "emit one JSON array of results instead of rendered tables")
	)
	flag.Parse()

	cfg := hotg.ExperimentConfig{Quick: *quick, Budget: *budget, Seed: *seed}

	selected := flag.Args()
	run := func(e hotg.Experiment) bool {
		if len(selected) == 0 {
			return true
		}
		for _, id := range selected {
			if id == e.ID {
				return true
			}
		}
		return false
	}

	failures := 0
	results := []jsonResult{} // non-nil so -json always emits an array
	for _, e := range hotg.Experiments() {
		if !run(e) {
			continue
		}
		t0 := time.Now()
		tab := e.Run(cfg)
		secs := time.Since(t0).Seconds()
		var failed []string
		for _, c := range tab.Failed() {
			failed = append(failed, c.Text)
		}
		failures += len(failed)
		if *jsonOut {
			results = append(results, jsonResult{ID: e.ID, Seconds: secs, Failed: failed, Table: tab})
			continue
		}
		fmt.Println(tab.Render())
		fmt.Printf("(%s finished in %.1fs)\n\n", e.ID, secs)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchtab: %d claim(s) FAILED\n", failures)
		os.Exit(1)
	}
}
