package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// diffResult is the slice of jsonResult fields the regression gate reads; the
// rest of the document is ignored so the baseline format can grow freely.
type diffResult struct {
	ID           string   `json:"id"`
	WallSeconds  float64  `json:"wall_seconds"`
	SolveSeconds float64  `json:"solve_seconds"`
	Failed       []string `json:"failed"`
}

func loadResults(path string) (map[string]diffResult, []string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var list []diffResult
	if err := json.Unmarshal(raw, &list); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	by := make(map[string]diffResult, len(list))
	order := make([]string, 0, len(list))
	for _, r := range list {
		if _, dup := by[r.ID]; !dup {
			order = append(order, r.ID)
		}
		by[r.ID] = r
	}
	return by, order, nil
}

// runDiff compares two benchtab -json result files per experiment and exits
// nonzero when the new run regresses. The gated number is solve_seconds —
// time inside the solver stack, far less noisy across machines than wall
// clock (which is reported but informational). A regression must clear both
// the relative threshold and the absolute min-seconds floor: sub-floor
// experiments finish too fast to measure meaningfully, and CI runners jitter.
// An experiment present in the baseline but missing from the new run is a
// failure — a silently dropped benchmark must not pass the gate.
func runDiff(oldPath, newPath string, threshold, minSeconds float64, stdout, stderr io.Writer) int {
	oldBy, oldOrder, err := loadResults(oldPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchtab:", err)
		return 2
	}
	newBy, newOrder, err := loadResults(newPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchtab:", err)
		return 2
	}

	fmt.Fprintf(stdout, "%-6s %12s %12s %9s   %s\n", "id", "old solve", "new solve", "delta", "status")
	bad := 0
	for _, id := range oldOrder {
		o := oldBy[id]
		n, ok := newBy[id]
		if !ok {
			fmt.Fprintf(stdout, "%-6s %12.3fs %12s %9s   MISSING from %s\n", id, o.SolveSeconds, "-", "-", newPath)
			bad++
			continue
		}
		delta := n.SolveSeconds - o.SolveSeconds
		pct := 0.0
		if o.SolveSeconds > 0 {
			pct = 100 * delta / o.SolveSeconds
		}
		status := "ok"
		switch {
		case len(n.Failed) > 0:
			status = fmt.Sprintf("FAILED CLAIMS (%d)", len(n.Failed))
			bad++
		case delta > minSeconds && o.SolveSeconds > 0 && delta > threshold*o.SolveSeconds:
			status = fmt.Sprintf("REGRESSION (>%d%%)", int(100*threshold))
			bad++
		case delta > minSeconds && o.SolveSeconds == 0:
			status = "REGRESSION (new solver time)"
			bad++
		}
		fmt.Fprintf(stdout, "%-6s %12.3fs %12.3fs %+8.1f%%   %s (wall %.2fs → %.2fs)\n",
			id, o.SolveSeconds, n.SolveSeconds, pct, status, o.WallSeconds, n.WallSeconds)
	}
	for _, id := range newOrder {
		if _, ok := oldBy[id]; !ok {
			fmt.Fprintf(stdout, "%-6s %12s %12.3fs %9s   new experiment (no baseline)\n", id, "-", newBy[id].SolveSeconds, "-")
		}
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "benchtab: %d experiment(s) regressed or missing (threshold %d%%, floor %.2fs)\n",
			bad, int(100*threshold), minSeconds)
		return 1
	}
	fmt.Fprintf(stdout, "no solver-time regressions (threshold %d%%, floor %.2fs)\n", int(100*threshold), minSeconds)
	return 0
}
