// Command difftest runs a differential-oracle campaign: a stream of seeded
// random cases — mini programs checked end-to-end across every technique
// (O1), and POST formulas checked against exhaustive finite-domain
// enumeration (O2) — with the metamorphic relations (O3) applied to both.
// Program-level findings are auto-minimized by the delta-debugging shrinker.
//
// Usage:
//
//	difftest -duration 60s                       # campaign with a time budget
//	difftest -seed 100 -count 50                 # fixed seed range, no clock
//	difftest -duration 60s -jobs 8               # parallel cases
//	difftest -duration 60s -findings f.jsonl     # JSONL findings log
//	difftest -count 10 -fault vm-wrong-mod       # drill: inject a known fault
//
// The exit code is 0 when the campaign finds nothing, 1 when at least one
// oracle fired, and 2 on usage errors. The findings log is one obs.Event per
// line: a "case" event per checked seed (elided unless -v), a "finding"
// event per violation, and a final "summary" event.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"hotg/internal/difftest"
	"hotg/internal/faults"
	"hotg/internal/obs"
	"hotg/internal/obshttp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command; it returns the process exit code so tests can
// drive the CLI without spawning a process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("difftest", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		duration = fs.Duration("duration", 0, "time budget (0 = use -count only)")
		seed     = fs.Int64("seed", 1, "first generator seed")
		count    = fs.Int64("count", 0, "number of seeds to check (0 with -duration = until the clock runs out)")
		jobs     = fs.Int("jobs", 1, "cases checked in parallel")
		runs     = fs.Int("runs", 0, "per-search execution budget (0 = library default)")
		findings = fs.String("findings", "", "write a JSONL findings log to this file")
		fault    = fs.String("fault", "", "install a named fault plan for the whole campaign (drill mode)")
		verbose  = fs.Bool("v", false, "log every checked case, not just findings")
		httpAddr = fs.String("http", "", "serve live introspection (/statusz, /metrics, /events) on this address")
		flight   = fs.String("flight", "", "dump the flight recorder (recent case/finding events, JSONL) to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *duration <= 0 && *count <= 0 {
		fmt.Fprintln(stderr, "difftest: need -duration and/or -count")
		return 2
	}
	if *jobs < 1 {
		fmt.Fprintln(stderr, "difftest: -jobs must be >= 1")
		return 2
	}
	plan, err := difftest.FaultPlan(*fault)
	if err != nil {
		fmt.Fprintln(stderr, "difftest:", err)
		return 2
	}
	if plan != nil {
		defer faults.Set(plan)()
	}

	var logw io.Writer
	if *findings != "" {
		f, err := os.Create(*findings)
		if err != nil {
			fmt.Fprintln(stderr, "difftest:", err)
			return 2
		}
		defer f.Close()
		logw = f
	}
	tracer := obs.NewTracer(logw) // nil logw: events are dropped, code path identical
	rec := obs.NewFlightRecorder(obs.DefaultFlightRecorderSize)
	tracer.WithRecorder(rec)
	metrics := obs.NewRegistry()
	liveCases := metrics.Gauge("difftest.cases")
	liveFound := metrics.Gauge("difftest.findings")
	if *httpAddr != "" {
		srv := &obshttp.Server{
			Obs:      &obs.Obs{Metrics: metrics, Trace: tracer},
			Recorder: rec,
			Info: func() map[string]int64 {
				return map[string]int64{
					"cases":    liveCases.Value(),
					"findings": liveFound.Value(),
				}
			},
		}
		addr, shutdown, err := obshttp.Serve(*httpAddr, srv)
		if err != nil {
			fmt.Fprintln(stderr, "difftest:", err)
			return 2
		}
		defer shutdown()
		fmt.Fprintf(stdout, "introspection: http://%s/statusz\n", addr)
	}

	cfg := difftest.Config{}
	if *runs > 0 {
		cfg.MaxRuns = *runs
	}

	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	expired := func() bool { return !deadline.IsZero() && !time.Now().Before(deadline) }

	var (
		next     = *seed - 1 // atomically incremented; each goroutine claims seeds
		cases    int64
		found    int64
		mu       sync.Mutex // serializes tracer + stdout reporting
		wg       sync.WaitGroup
		minTries = 400 // shrink budget per finding; campaigns favor throughput
	)
	report := func(seed int64, fs []difftest.Finding) {
		mu.Lock()
		defer mu.Unlock()
		if *verbose || len(fs) > 0 {
			tracer.Emit(obs.Event{Kind: "case", Num: map[string]int64{
				"seed": seed, "findings": int64(len(fs)),
			}})
		}
		for _, f := range fs {
			if f.Oracle == "O1" && f.Source != "" {
				if min, stmts, err := difftest.MinimizeFinding(f, cfg, minTries); err == nil {
					f.Minimized = min
					fmt.Fprintf(stdout, "finding (seed %d, shrunk to %d stmts): %s/%s: %s\n",
						f.Seed, stmts, f.Oracle, f.Relation, f.Detail)
				} else {
					fmt.Fprintf(stdout, "finding (seed %d): %s/%s: %s\n", f.Seed, f.Oracle, f.Relation, f.Detail)
				}
			} else {
				fmt.Fprintf(stdout, "finding (seed %d): %s/%s: %s\n", f.Seed, f.Oracle, f.Relation, f.Detail)
			}
			ev := obs.Event{Kind: "finding",
				Num: map[string]int64{"seed": f.Seed},
				Str: map[string]string{"oracle": f.Oracle, "relation": f.Relation, "detail": f.Detail},
			}
			if f.Fault != "" {
				ev.Str["fault"] = f.Fault
			}
			if f.Formula != "" {
				ev.Str["formula"] = f.Formula
			}
			if f.Source != "" {
				ev.Str["source"] = f.Source
			}
			if f.Minimized != "" {
				ev.Str["minimized"] = f.Minimized
			}
			tracer.Emit(ev)
		}
	}

	start := time.Now()
	for w := 0; w < *jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := atomic.AddInt64(&next, 1)
				if *count > 0 && s >= *seed+*count {
					return
				}
				if expired() {
					return
				}
				fs := difftest.CheckO2(difftest.NewFolCase(s))
				fs = append(fs, difftest.CheckCase(difftest.NewCase(s), cfg)...)
				liveCases.Set(atomic.AddInt64(&cases, 1))
				liveFound.Set(atomic.AddInt64(&found, int64(len(fs))))
				report(s, fs)
			}
		}()
	}
	wg.Wait()

	elapsed := time.Since(start).Round(time.Millisecond)
	tracer.Emit(obs.Event{Kind: "summary", Num: map[string]int64{
		"cases": cases, "findings": found, "elapsed_ms": elapsed.Milliseconds(),
	}})
	if err := tracer.Close(); err != nil {
		fmt.Fprintln(stderr, "difftest: findings log:", err)
		return 2
	}
	if *flight != "" {
		if err := dumpFlight(rec, *flight); err != nil {
			fmt.Fprintln(stderr, "difftest: flight dump:", err)
			return 2
		}
		fmt.Fprintf(stdout, "flight recorder dumped to %s (%d events retained)\n", *flight, len(rec.Snapshot()))
	}
	fmt.Fprintf(stdout, "difftest: %d cases, %d findings in %s (first seed %d, jobs %d)\n",
		cases, found, elapsed, *seed, *jobs)
	if found > 0 {
		return 1
	}
	return 0
}

// dumpFlight writes the recorder's retained window as JSONL — the artifact CI
// uploads when a smoke campaign fails, so the tail of the run is inspectable
// without rerunning it.
func dumpFlight(rec *obs.FlightRecorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, ev := range rec.Snapshot() {
		if err := enc.Encode(ev); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}
