package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t); code != 2 {
		t.Error("no budget flags should exit 2")
	}
	if code, _, _ := runCLI(t, "-count", "1", "-jobs", "0"); code != 2 {
		t.Error("-jobs 0 should exit 2")
	}
	if code, _, stderr := runCLI(t, "-count", "1", "-fault", "nonsense"); code != 2 {
		t.Error("unknown -fault should exit 2")
	} else if !strings.Contains(stderr, "nonsense") {
		t.Errorf("stderr does not name the bad fault: %q", stderr)
	}
}

func TestCleanCampaignExitsZero(t *testing.T) {
	code, out, stderr := runCLI(t, "-seed", "1", "-count", "4", "-jobs", "2")
	if code != 0 {
		t.Fatalf("clean campaign exited %d\nstdout: %s\nstderr: %s", code, out, stderr)
	}
	if !strings.Contains(out, "4 cases, 0 findings") {
		t.Errorf("summary line missing: %q", out)
	}
}

func TestFaultDrillFindsAndLogs(t *testing.T) {
	if testing.Short() {
		t.Skip("fault drill shrinks findings; skipped in -short")
	}
	log := filepath.Join(t.TempDir(), "findings.jsonl")
	// Seed 41 is the committed vm-wrong-mod reproducer's origin; a window
	// around it must trip the O1 oracle under the injected fault.
	code, out, stderr := runCLI(t,
		"-seed", "40", "-count", "3", "-fault", "vm-wrong-mod", "-findings", log)
	if code != 1 {
		t.Fatalf("fault drill exited %d, want 1\nstdout: %s\nstderr: %s", code, out, stderr)
	}
	if !strings.Contains(out, "finding (seed") {
		t.Errorf("stdout has no finding line: %q", out)
	}

	f, err := os.Open(log)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	kinds := map[string]int{}
	var lastSummary map[string]any
	sc := bufio.NewScanner(f)
	sc.Buffer(nil, 1<<20)
	for sc.Scan() {
		var ev struct {
			Kind string           `json:"kind"`
			Num  map[string]int64 `json:"num"`
			Str  map[string]any   `json:"str"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("findings log line is not JSON: %v\n%s", err, sc.Text())
		}
		kinds[ev.Kind]++
		if ev.Kind == "finding" {
			if ev.Str["oracle"] == "" || ev.Str["relation"] == "" {
				t.Errorf("finding event missing oracle/relation: %s", sc.Text())
			}
		}
		if ev.Kind == "summary" {
			lastSummary = map[string]any{"cases": ev.Num["cases"], "findings": ev.Num["findings"]}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if kinds["finding"] == 0 {
		t.Error("findings log has no finding events")
	}
	if kinds["summary"] != 1 {
		t.Errorf("findings log has %d summary events, want 1", kinds["summary"])
	}
	if lastSummary != nil && lastSummary["findings"].(int64) == 0 {
		t.Error("summary reports zero findings despite drill")
	}
}

func TestDurationBudgetStops(t *testing.T) {
	code, out, _ := runCLI(t, "-duration", "150ms", "-jobs", "2")
	if code != 0 {
		t.Fatalf("timed clean campaign exited %d: %s", code, out)
	}
	if !strings.Contains(out, "findings in") {
		t.Errorf("summary line missing: %q", out)
	}
}
