package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hotg/internal/obs"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t); code != 2 {
		t.Error("no budget flags should exit 2")
	}
	if code, _, _ := runCLI(t, "-count", "1", "-jobs", "0"); code != 2 {
		t.Error("-jobs 0 should exit 2")
	}
	if code, _, stderr := runCLI(t, "-count", "1", "-fault", "nonsense"); code != 2 {
		t.Error("unknown -fault should exit 2")
	} else if !strings.Contains(stderr, "nonsense") {
		t.Errorf("stderr does not name the bad fault: %q", stderr)
	}
}

func TestCleanCampaignExitsZero(t *testing.T) {
	code, out, stderr := runCLI(t, "-seed", "1", "-count", "4", "-jobs", "2")
	if code != 0 {
		t.Fatalf("clean campaign exited %d\nstdout: %s\nstderr: %s", code, out, stderr)
	}
	if !strings.Contains(out, "4 cases, 0 findings") {
		t.Errorf("summary line missing: %q", out)
	}
}

func TestFaultDrillFindsAndLogs(t *testing.T) {
	if testing.Short() {
		t.Skip("fault drill shrinks findings; skipped in -short")
	}
	log := filepath.Join(t.TempDir(), "findings.jsonl")
	// Seed 41 is the committed vm-wrong-mod reproducer's origin; a window
	// around it must trip the O1 oracle under the injected fault.
	code, out, stderr := runCLI(t,
		"-seed", "40", "-count", "3", "-fault", "vm-wrong-mod", "-findings", log)
	if code != 1 {
		t.Fatalf("fault drill exited %d, want 1\nstdout: %s\nstderr: %s", code, out, stderr)
	}
	if !strings.Contains(out, "finding (seed") {
		t.Errorf("stdout has no finding line: %q", out)
	}

	f, err := os.Open(log)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	kinds := map[string]int{}
	var lastSummary map[string]any
	sc := bufio.NewScanner(f)
	sc.Buffer(nil, 1<<20)
	for sc.Scan() {
		var ev struct {
			Kind string           `json:"kind"`
			Num  map[string]int64 `json:"num"`
			Str  map[string]any   `json:"str"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("findings log line is not JSON: %v\n%s", err, sc.Text())
		}
		kinds[ev.Kind]++
		if ev.Kind == "finding" {
			if ev.Str["oracle"] == "" || ev.Str["relation"] == "" {
				t.Errorf("finding event missing oracle/relation: %s", sc.Text())
			}
		}
		if ev.Kind == "summary" {
			lastSummary = map[string]any{"cases": ev.Num["cases"], "findings": ev.Num["findings"]}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if kinds["finding"] == 0 {
		t.Error("findings log has no finding events")
	}
	if kinds["summary"] != 1 {
		t.Errorf("findings log has %d summary events, want 1", kinds["summary"])
	}
	if lastSummary != nil && lastSummary["findings"].(int64) == 0 {
		t.Error("summary reports zero findings despite drill")
	}
}

func TestDurationBudgetStops(t *testing.T) {
	code, out, _ := runCLI(t, "-duration", "150ms", "-jobs", "2")
	if code != 0 {
		t.Fatalf("timed clean campaign exited %d: %s", code, out)
	}
	if !strings.Contains(out, "findings in") {
		t.Errorf("summary line missing: %q", out)
	}
}

// TestFlightDump checks -flight: the recorder's retained window lands on disk
// as JSONL (one obs.Event per line, ascending seq) including the campaign's
// finding events — the artifact CI uploads on smoke failure.
func TestFlightDump(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a fault-drill campaign")
	}
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	code, out, stderr := runCLI(t, "-seed", "40", "-count", "3", "-fault", "vm-wrong-mod", "-flight", path, "-v")
	if code != 1 {
		t.Fatalf("fault drill exited %d\nstdout: %s\nstderr: %s", code, out, stderr)
	}
	if !strings.Contains(out, "flight recorder dumped to") {
		t.Errorf("no dump confirmation: %q", out)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lastSeq int64
	kinds := map[string]int{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("flight dump line is not an Event: %v\n%s", err, sc.Text())
		}
		if ev.Seq <= lastSeq {
			t.Fatalf("flight dump not ascending: seq %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		kinds[ev.Kind]++
	}
	if kinds["finding"] == 0 || kinds["case"] == 0 || kinds["summary"] != 1 {
		t.Errorf("flight dump kinds = %v, want case+finding events and one summary", kinds)
	}
}

// TestHTTPLiveFindings checks -http: /statusz reports the campaign's live
// case/finding counters (matching the final summary once the run ends).
func TestHTTPLiveFindings(t *testing.T) {
	var out, errb syncBuffer
	codeCh := make(chan int, 1)
	go func() {
		codeCh <- run([]string{"-seed", "1", "-count", "60", "-jobs", "2", "-http", "127.0.0.1:0"}, &out, &errb)
	}()
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no introspection address announced:\n%s", out.String())
		}
		for _, ln := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(ln, "introspection: http://"); ok {
				addr = strings.TrimSuffix(rest, "/statusz")
			}
		}
		time.Sleep(time.Millisecond)
	}
	// Hit /statusz while the campaign is running — it must answer. Retry
	// briefly: the GET races server startup on loaded machines.
	var body []byte
	for {
		resp, err := http.Get("http://" + addr + "/statusz")
		if err == nil {
			body, _ = io.ReadAll(resp.Body)
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/statusz never answered: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	var status struct {
		Headline map[string]int64 `json:"headline"`
	}
	if err := json.Unmarshal(body, &status); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, body)
	}
	if _, ok := status.Headline["cases"]; !ok {
		t.Errorf("/statusz headline missing cases: %s", body)
	}
	if code := <-codeCh; code != 0 {
		t.Fatalf("campaign exited %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "60 cases, 0 findings") {
		t.Errorf("summary line missing: %q", out.String())
	}
}

// syncBuffer is a goroutine-safe buffer for watching CLI output mid-run.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
