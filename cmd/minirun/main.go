// Command minirun executes a mini program concretely.
//
// Usage:
//
//	minirun prog.mini 3 42          # run file with inputs 3, 42
//	minirun -workload foo 567 42    # run a registered workload
//	minirun -trace prog.mini 1      # also print the branch trace
//
// The native registry provides hash (arity 1) and hashstr (arity 6).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"hotg"
)

func main() {
	var (
		workload = flag.String("workload", "", "run a registered workload instead of a file")
		trace    = flag.Bool("trace", false, "print the branch trace")
	)
	flag.Parse()
	args := flag.Args()

	var prog *hotg.Program
	switch {
	case *workload != "":
		w, ok := hotg.GetWorkload(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "minirun: unknown workload %q\n", *workload)
			os.Exit(2)
		}
		prog = w.Build()
	case len(args) > 0:
		src, err := os.ReadFile(args[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "minirun:", err)
			os.Exit(2)
		}
		args = args[1:]
		prog, err = hotg.Compile(string(src), hotg.DefaultNatives())
		if err != nil {
			fmt.Fprintln(os.Stderr, "minirun:", err)
			os.Exit(2)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: minirun [-workload name | file.mini] input...")
		os.Exit(2)
	}

	shape := prog.Shape()
	if len(args) != len(shape.Names) {
		fmt.Fprintf(os.Stderr, "minirun: program needs %d inputs (%v), got %d\n",
			len(shape.Names), shape.Names, len(args))
		os.Exit(2)
	}
	input := make([]int64, len(args))
	for i, a := range args {
		v, err := strconv.ParseInt(a, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "minirun: bad input %q: %v\n", a, err)
			os.Exit(2)
		}
		input[i] = v
	}

	res := hotg.Run(prog, input)
	fmt.Printf("stop: %s\n", res.Kind)
	switch {
	case res.ErrorMsg != "":
		fmt.Printf("error site %d: %q\n", res.ErrorSite, res.ErrorMsg)
	case res.RuntimeMsg != "":
		fmt.Printf("fault: %s\n", res.RuntimeMsg)
	default:
		fmt.Printf("return: %d\n", res.Return)
	}
	fmt.Printf("steps: %d, branch events: %d\n", res.Steps, len(res.Branches))
	if *trace {
		fmt.Printf("trace: %s\n", res.Path())
	}
}
