// Lexerfuzz reproduces the Section 7 application study interactively: a
// flex-style lexer recognizes command-language keywords by comparing hash
// values, which defeats both random testing and classic dynamic test
// generation — higher-order test generation inverts the hash through its
// recorded samples and drives execution into the parser, finding the deep
// bugs behind well-formed keyword sequences.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"strings"

	"hotg"
	"hotg/internal/lexapp"
)

func main() {
	budget := flag.Int("budget", 600, "execution budget per technique")
	flag.Parse()

	fmt.Printf("The program under test: a lexer hashing %d keywords (%s)\n",
		len(lexapp.Keywords), keywordList())
	fmt.Printf("followed by a parser with 5 deep error sites. Budget: %d executions.\n\n", *budget)

	w := lexapp.Lexer()
	fmt.Println("seeds (keyword-free junk):")
	for _, s := range w.Seeds {
		fmt.Printf("  %q\n", lexapp.DecodeInput(s))
	}
	fmt.Println()

	type row struct {
		name string
		st   *hotg.Stats
	}
	var rows []row

	fz := hotg.Fuzz(w.Build(), hotg.FuzzOptions{
		MaxRuns: *budget, Seeds: w.Seeds, Bounds: w.Bounds, Rand: rand.New(rand.NewSource(1)),
	})
	rows = append(rows, row{"blackbox-random", fz})

	for _, mode := range []hotg.Mode{hotg.ModeUnsound, hotg.ModeHigherOrder} {
		wm := lexapp.Lexer()
		eng := hotg.NewEngine(wm.Build(), mode)
		st := hotg.Explore(eng, hotg.SearchOptions{MaxRuns: *budget, Seeds: wm.Seeds, Bounds: wm.Bounds})
		rows = append(rows, row{mode.String(), st})
	}

	kwIDs := lexapp.KeywordBranchIDs(w.Build())
	fmt.Printf("%-18s %-10s %-12s %-12s %s\n", "technique", "coverage", "keywords", "parser bugs", "divergences")
	for _, r := range rows {
		kw := 0
		for _, id := range kwIDs {
			if r.st.SideCovered(id, true) {
				kw++
			}
		}
		fmt.Printf("%-18s %3d/%-6d %2d/%-9d %-12d %d\n", r.name,
			r.st.BranchSidesCovered(), r.st.BranchSidesTotal(),
			kw, len(kwIDs), len(r.st.ErrorSitesFound()), r.st.Divergences)
	}

	fmt.Println("\nbugs found by higher-order test generation:")
	ho := rows[len(rows)-1].st
	if len(ho.Bugs) == 0 {
		fmt.Println("  (none at this budget — try -budget 1500)")
	}
	for _, b := range ho.Bugs {
		fmt.Printf("  run %-5d %-20q input=%q\n", b.Run, b.Msg, lexapp.DecodeInput(b.Input))
	}
	fmt.Println("\nNo seed contained a keyword: every keyword above was synthesized by")
	fmt.Println("inverting hashstr through its recorded input–output samples (Section 7).")
}

func keywordList() string {
	words := make([]string, len(lexapp.Keywords))
	for i, kw := range lexapp.Keywords {
		words[i] = kw.Word
	}
	return strings.Join(words, ", ")
}
