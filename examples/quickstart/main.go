// Quickstart: compile a program with an uninvertible hash guard, then watch
// each test-generation technique try to reach its error site.
//
// This is the paper's introductory example:
//
//	int obscure(int x, int y) {
//	    if (x == hash(y)) return -1; // error
//	    return 0;                    // ok
//	}
//
// Static test generation is helpless (it cannot reason about hash), while
// dynamic test generation cracks the guard in two runs, and higher-order test
// generation does the same from a validity proof — without ever producing a
// divergent test.
package main

import (
	"fmt"
	"log"

	"hotg"
)

const src = `
fn main(x int, y int) int {
	if (x == hash(y)) {
		error("reached the guarded branch");
	}
	return 0;
}`

func main() {
	prog, err := hotg.Compile(src, hotg.DefaultNatives())
	if err != nil {
		log.Fatal(err)
	}

	seeds := [][]int64{{33, 42}}
	for _, mode := range []hotg.Mode{
		hotg.ModeStatic, hotg.ModeUnsound, hotg.ModeSound, hotg.ModeHigherOrder,
	} {
		eng := hotg.NewEngine(prog, mode)
		stats := hotg.Explore(eng, hotg.SearchOptions{MaxRuns: 20, Seeds: seeds})
		verdict := "did NOT reach the branch"
		for _, b := range stats.Bugs {
			verdict = fmt.Sprintf("reached it on run %d with input x=%d y=%d", b.Run, b.Input[0], b.Input[1])
			break
		}
		fmt.Printf("%-20s %s\n", mode, verdict)
		fmt.Printf("%20s %s\n", "", stats.Summary())
	}

	fmt.Println()
	fmt.Println("The random baseline, for contrast (500 executions):")
	fz := hotg.Fuzz(prog, hotg.FuzzOptions{MaxRuns: 500, Seeds: seeds})
	fmt.Printf("%-20s %s\n", "blackbox-random", fz.Summary())
}
