// Multistep walks through Example 7 of the paper step by step, driving the
// engine and the validity prover by hand:
//
//	int foo(int x, int y) {
//	    if (x == hash(y)) {
//	        ...
//	        if (y == 10) return -1; // error
//	    }
//	    ...
//	}
//
// Reaching the error requires *two-step* test generation: the proved strategy
// "set y := 10, set x := h(10)" cannot be interpreted until the value of
// h(10) is observed, so an intermediate test is run purely to sample it.
package main

import (
	"fmt"
	"log"

	"hotg"
)

const src = `
fn main(x int, y int) {
	if (x == hash(y)) {
		if (y == 10) {
			error("deep");
		}
	}
}`

func main() {
	prog, err := hotg.Compile(src, hotg.DefaultNatives())
	if err != nil {
		log.Fatal(err)
	}
	eng := hotg.NewEngine(prog, hotg.ModeHigherOrder)
	hashOf := func(v int64) int64 {
		out, _ := eng.NativeEval("hash", []int64{v})
		return out
	}

	// Run 1: start where the paper does — on the then-branch of the first
	// guard, i.e. with x = hash(42), y = 42.
	in1 := []int64{hashOf(42), 42}
	ex1 := eng.Run(in1)
	fmt.Printf("run 1: input (x=%d, y=%d)\n", in1[0], in1[1])
	fmt.Printf("  path constraint: %v\n", ex1.Formula())
	fmt.Printf("  IOF samples recorded: %d\n", eng.Samples.Len())

	// Negate the last constraint (y ≠ 10) and post-process.
	alt := ex1.Alt(len(ex1.PC) - 1)
	fmt.Printf("\ntarget: ALT(pc) = %v\n", alt)
	fmt.Printf("POST(ALT) = %s\n", hotg.PostDescription(alt, eng.Samples))

	fallback := map[int]int64{}
	for i, v := range eng.InputVars {
		fallback[v.ID] = in1[i]
	}
	strategy, outcome := hotg.ProveValidity(alt, eng.Samples, hotg.ProveOptions{
		Pool: eng.Pool, Fallback: fallback,
	})
	if outcome != hotg.OutcomeProved {
		log.Fatalf("expected a validity proof, got %v", outcome)
	}
	fmt.Printf("validity proof found; strategy: %v\n", strategy)
	for _, step := range strategy.Proof {
		fmt.Printf("  proof step: %s\n", step)
	}

	res := strategy.Resolve(eng.Samples)
	if res.Complete {
		log.Fatal("expected resolution to be blocked on a missing sample")
	}
	fmt.Printf("resolution blocked: need %v — time for an intermediate test\n", res.Probes)

	// Run 2 (intermediate): keep x, set the resolved y := 10 so the program
	// itself computes hash(10) and the engine records the sample.
	in2 := []int64{in1[0], res.Values[eng.InputVars[1].ID]}
	eng.Run(in2)
	fmt.Printf("\nrun 2 (intermediate): input (x=%d, y=%d) — observed hash(10)=%d\n",
		in2[0], in2[1], hashOf(10))

	// Re-resolve: the strategy now interprets fully.
	res = strategy.Resolve(eng.Samples)
	if !res.Complete {
		log.Fatalf("resolution still blocked: %v", res.Probes)
	}
	in3 := []int64{res.Values[eng.InputVars[0].ID], res.Values[eng.InputVars[1].ID]}
	ex3 := eng.Run(in3)
	fmt.Printf("run 3 (final): input (x=%d, y=%d) → %s", in3[0], in3[1], ex3.Result.Kind)
	if ex3.Result.ErrorMsg != "" {
		fmt.Printf(" %q", ex3.Result.ErrorMsg)
	}
	fmt.Println()
	fmt.Println("\ntwo-step test generation, exactly as in Example 7 of the paper")
}
