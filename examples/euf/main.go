// Euf demonstrates Examples 5 and 6 of the paper: validity proofs that need
// the theory of equality with uninterpreted functions, and proofs that only
// become possible once concrete samples enter the antecedent.
package main

import (
	"fmt"
	"log"

	"hotg"
)

// eqSrc guards its error site with hash(x) == hash(y): unreachable for sound
// concretization, trivial for EUF reasoning (set x := y).
const eqSrc = `
fn main(x int, y int) {
	if (hash(x) == hash(y)) {
		error("equal hashes");
	}
}`

// succSrc guards with hash(x) == hash(y) + 1: valid only under an antecedent
// containing a sample pair whose outputs differ by one.
const succSrc = `
fn main(x int, y int) {
	if (hash(x) == hash(y) + 1) {
		error("successor hashes");
	}
}`

func main() {
	fmt.Println("Example 5 — ∃x,y: h(x) = h(y), proved by EUF functionality (x := y)")
	demo(eqSrc, [][]int64{{3, 8}}, hotg.DefaultNatives())

	fmt.Println()
	fmt.Println("Example 6 — ∃x,y: h(x) = h(y)+1, needs the sample pair h(0)=0, h(1)=1")
	// A hash with h(0)=0 and h(1)=1 so the sample pair exists; the seeds
	// (0,1) teach both samples on the first run.
	ns := hotg.Natives{}
	ns.Register("hash", 1, func(a []int64) int64 {
		switch a[0] {
		case 0:
			return 0
		case 1:
			return 1
		}
		return 100 + a[0]*a[0]%97
	})
	demo(succSrc, [][]int64{{0, 1}}, ns)
}

func demo(src string, seeds [][]int64, ns hotg.Natives) {
	prog, err := hotg.Compile(src, ns)
	if err != nil {
		log.Fatal(err)
	}

	sound := hotg.Explore(hotg.NewEngine(prog, hotg.ModeSound),
		hotg.SearchOptions{MaxRuns: 30, Seeds: seeds})
	fmt.Printf("  dart-sound:    %s\n", verdict(sound))

	eng := hotg.NewEngine(prog, hotg.ModeHigherOrder)
	ho := hotg.Explore(eng, hotg.SearchOptions{MaxRuns: 30, Seeds: seeds})
	fmt.Printf("  higher-order:  %s\n", verdict(ho))

	// Show the formula the prover actually dispatched.
	ex := eng.Run(seeds[0])
	alt := ex.Alt(len(ex.PC) - 1)
	fmt.Printf("  POST(ALT) =    %s\n", hotg.PostDescription(alt, eng.Samples))
}

func verdict(st *hotg.Stats) string {
	for _, b := range st.Bugs {
		return fmt.Sprintf("reached %q with input x=%d y=%d (run %d)", b.Msg, b.Input[0], b.Input[1], b.Run)
	}
	return "error site NOT reached — " + st.Summary()
}
