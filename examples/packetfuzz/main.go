// Packetfuzz demonstrates the second application: a packet parser whose
// header carries an 8-bit CRC of the payload ("CRC-ing data" is on the
// paper's §6 list of functions that defeat symbolic execution).
//
// The deep bugs couple payload content with checksum validity:
//
//   - sound concretization pins the payload when the CRC is concretized and
//     can never change it again — every bug is missed;
//   - unsound concretization repairs the checksum one generation after each
//     payload change, at the price of divergences along the way;
//   - higher-order generation keeps checksum = crc8(payload) symbolic; each
//     payload flip triggers a multi-step sequence that re-samples the CRC.
package main

import (
	"fmt"

	"hotg"
	"hotg/internal/lexapp"
)

func main() {
	w := lexapp.Packet()
	prog := w.Build()

	fmt.Println("packet layout: [version, type, len, payload[8], crc8]")
	fmt.Printf("seed packet:   %v (a valid CONTROL packet)\n\n", w.Seeds[0])

	for _, mode := range []hotg.Mode{hotg.ModeSound, hotg.ModeUnsound, hotg.ModeHigherOrder} {
		eng := hotg.NewEngine(prog, mode)
		st := hotg.Explore(eng, hotg.SearchOptions{MaxRuns: 400, Seeds: w.Seeds, Bounds: w.Bounds})
		fmt.Printf("%-20s bugs=%d divergences=%d multi-step=%d runs=%d\n",
			mode, len(st.ErrorSitesFound()), st.Divergences, st.MultiStepChains, st.Runs)
		for _, b := range st.Bugs {
			fmt.Printf("    %-16s %v\n", b.Msg, b.Input)
		}
	}

	fmt.Println("\nEvery higher-order bug packet carries a correct crc8 for its forged")
	fmt.Println("payload — computed by sampling the unknown CRC at the new payload via")
	fmt.Println("an intermediate test (Example 7's multi-step generation at work).")
}
