// Package hotg is a from-scratch reproduction of
//
//	Patrice Godefroid, "Higher-Order Test Generation", PLDI 2011.
//
// It implements systematic dynamic test generation (DART/SAGE-style concolic
// execution) over a small imperative language, with the paper's full spectrum
// of imprecision-handling strategies — unsound concretization, sound
// concretization (eager and delayed), static symbolic execution — and the
// paper's contribution: higher-order test generation, where unknown functions
// become uninterpreted function symbols, concrete input–output samples are
// recorded at run time, and new test inputs are derived from constructive
// validity proofs of first-order formulas ∃X: A ⇒ pc, including multi-step
// test sequences that gather missing samples.
//
// The package is a facade over the implementation packages:
//
//	internal/mini      the mini language (lexer, parser, checker, interpreter)
//	internal/sym       symbolic terms and formulas (LIA + EUF)
//	internal/smt       a from-scratch SMT solver for QF_UFLIA
//	internal/fol       POST(pc) construction, validity proofs, strategies
//	internal/concolic  the concolic execution engine (Figures 1–3)
//	internal/search    the directed generational search
//	internal/fuzz      the blackbox random baseline
//	internal/lexapp    the paper's example programs and the §7 lexer study
//	internal/eval      the experiment harness behind EXPERIMENTS.md
//
// # Quick start
//
//	prog, err := hotg.Compile(src, hotg.DefaultNatives())
//	eng := hotg.NewEngine(prog, hotg.ModeHigherOrder)
//	stats := hotg.Explore(eng, hotg.SearchOptions{MaxRuns: 100, Seeds: [][]int64{{0, 0}}})
//	fmt.Println(stats.Summary())
//
// Explore runs test execution and proving on SearchOptions.Workers goroutines
// (default GOMAXPROCS); results are bit-identical at every worker count, so
// parallelism is purely a wall-clock knob.
package hotg

import (
	"io"
	"net/http"
	"os"

	"hotg/internal/campaign"
	"hotg/internal/concolic"
	"hotg/internal/eval"
	"hotg/internal/fleet"
	"hotg/internal/fol"
	"hotg/internal/fuzz"
	"hotg/internal/lexapp"
	"hotg/internal/mini"
	"hotg/internal/obs"
	"hotg/internal/obshttp"
	"hotg/internal/search"
	"hotg/internal/serve"
	"hotg/internal/smt"
	"hotg/internal/sym"
)

// Mode selects how imprecision in symbolic execution is handled; see the
// package documentation and concolic.Mode.
type Mode = concolic.Mode

// The execution modes, in increasing order of reasoning power.
const (
	// ModeStatic is static test generation (King-style symbolic execution,
	// no concrete fallback).
	ModeStatic = concolic.ModeStatic
	// ModeUnsound is DART's default concretization (Figure 1 without
	// line 14).
	ModeUnsound = concolic.ModeUnsound
	// ModeSound is sound concretization (Figure 1 with line 14).
	ModeSound = concolic.ModeSound
	// ModeSoundDelayed delays concretization constraints until use (§3.3).
	ModeSoundDelayed = concolic.ModeSoundDelayed
	// ModeHigherOrder is higher-order test generation (Figure 3).
	ModeHigherOrder = concolic.ModeHigherOrder
)

// Program is a checked program in the mini language.
type Program = mini.Program

// Natives is the registry of host ("unknown") functions a program may call.
type Natives = mini.Natives

// RunResult is the outcome of one concrete execution.
type RunResult = mini.Result

// Engine performs side-by-side concrete and symbolic execution.
type Engine = concolic.Engine

// Execution is one concolic run: concrete result plus path constraint.
type Execution = concolic.Execution

// SearchOptions configures Explore.
type SearchOptions = search.Options

// Stats aggregates a search or fuzzing campaign.
type Stats = search.Stats

// SearchBudget sets wall-clock ceilings for proofs, targets, and the whole
// search, and enables graceful degradation down the precision ladder when a
// higher-order proof exceeds its budget. Attach one via SearchOptions.Budget;
// the zero value is unlimited. See DESIGN.md §8 and the README's operator
// handbook.
type SearchBudget = search.Budget

// BudgetStats is the resource-budget and degradation section of Stats:
// proofs cut short, targets degraded, recovered failures, and per-rung test
// counts.
type BudgetStats = search.BudgetStats

// Rung identifies the precision-ladder rung that produced a test (§5 of the
// paper, options (3) down to (1)).
type Rung = search.Rung

// The precision-ladder rungs, strongest first.
const (
	// RungProof is a constructive validity proof with uninterpreted
	// functions — option (3), sound and precise.
	RungProof = search.RungProof
	// RungQF is quantifier-free solving with the model checked against the
	// real functions — option (2), sound but weak.
	RungQF = search.RungQF
	// RungConcretize is DART-style concretization of unknown applications —
	// option (1), unsound.
	RungConcretize = search.RungConcretize
)

// Bug is one discovered defect.
type Bug = search.Bug

// FuzzOptions configures the blackbox random baseline.
type FuzzOptions = fuzz.Options

// Strategy is a constructive validity proof, read as an input recipe.
type Strategy = fol.Strategy

// ProveOutcome classifies a validity-proof attempt.
type ProveOutcome = fol.Outcome

// Validity-proof outcomes.
const (
	OutcomeProved  = fol.OutcomeProved
	OutcomeInvalid = fol.OutcomeInvalid
	OutcomeUnknown = fol.OutcomeUnknown
	// OutcomeTimeout means the proof search was cut off by its wall-clock
	// deadline or cancelled; the formula's validity remains undecided.
	OutcomeTimeout = fol.OutcomeTimeout
)

// ProveOptions configures ProveValidity.
type ProveOptions = fol.Options

// Resolution is the interpretation of a strategy against the sample store.
type Resolution = fol.Resolution

// Probe is a missing sample blocking a strategy (multi-step generation).
type Probe = fol.Probe

// SampleStore is the IOF table of recorded input–output samples.
type SampleStore = sym.SampleStore

// SummaryCache memoizes compositional path summaries (Section 8's
// higher-order compositional test generation). Attach one to an engine via
// eng.Summaries = hotg.NewSummaryCache().
type SummaryCache = concolic.SummaryCache

// Bound restricts one input's integer domain.
type Bound = smt.Bound

// Observer collects metrics (counters, gauges, latency histograms) and,
// when its Trace field is set, a structured event stream for the whole
// pipeline. Attach one via SearchOptions.Obs; a nil Observer disables all
// observability at near-zero cost. See DESIGN.md §7.
type Observer = obs.Obs

// Tracer serializes pipeline events as JSONL and can retain them in memory
// for Chrome trace export.
type Tracer = obs.Tracer

// TraceEvent is one structured pipeline event (see DESIGN.md §7 for the
// field-by-field schema).
type TraceEvent = obs.Event

// MetricValue is one metric in an Observer snapshot.
type MetricValue = obs.MetricValue

// FlightRecorder is a bounded ring of the most recent trace events, readable
// without blocking the emitter — attach one with Tracer.WithRecorder and tail
// it over HTTP via the introspection server's /events endpoint.
type FlightRecorder = obs.FlightRecorder

// IntrospectionServer serves a live view of a running campaign: /metrics
// (OpenMetrics), /statusz (JSON or HTML), /events (flight-recorder tail), and
// /debug/pprof. See DESIGN.md §12.
type IntrospectionServer = obshttp.Server

// PhaseNode is one row of the phase self-time attribution tree.
type PhaseNode = obs.PhaseNode

// Workload is a ready-to-search program under test.
type Workload = lexapp.Workload

// Snapshot is a restorable image of the full search state — sample store,
// proof cache, work queues, dedup sets, statistics — taken at a work-loop
// boundary. See SearchOptions.Checkpoint/Restore and DESIGN.md §9.
type Snapshot = search.Snapshot

// CheckpointOptions configures periodic snapshotting of a running search.
type CheckpointOptions = search.CheckpointOptions

// RunRecord describes one applied execution, delivered to
// SearchOptions.OnRun in canonical apply order.
type RunRecord = search.RunRecord

// Campaign is a persistent on-disk testing campaign: a content-addressed
// corpus, triaged crash buckets, and resumable checkpoints. See DESIGN.md §9.
type Campaign = campaign.Campaign

// CorpusEntry is one deduplicated corpus input with scheduling metadata.
type CorpusEntry = campaign.Entry

// TriageBucket is one deduplicated failure class of a campaign.
type TriageBucket = campaign.Bucket

// Experiment reproduces one table/figure of EXPERIMENTS.md.
type Experiment = eval.Experiment

// ExperimentConfig tunes experiment budgets.
type ExperimentConfig = eval.Config

// Table is a rendered experiment result with machine-checked claims.
type Table = eval.Table

// Compile parses and checks a mini program against the native registry.
func Compile(src string, natives Natives) (*Program, error) {
	p, err := mini.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := mini.Check(p, natives); err != nil {
		return nil, err
	}
	return p, nil
}

// DefaultNatives returns a registry with the scrambled hash function used by
// the paper examples ("hash", arity 1) and the lexer string hash ("hashstr").
func DefaultNatives() Natives {
	ns := Natives{}
	ns.Register("hash", 1, lexapp.ScrambledHash)
	ns.Register("hashstr", lexapp.ChunkLen, lexapp.HashStr)
	return ns
}

// Run executes the program concretely on the flattened input vector.
func Run(p *Program, input []int64) *RunResult {
	return mini.Run(p, input, mini.RunOptions{})
}

// NewEngine creates a concolic engine for the program under the given mode.
func NewEngine(p *Program, mode Mode) *Engine { return concolic.New(p, mode) }

// NewSummaryCache returns an empty compositional-summary cache.
func NewSummaryCache() *SummaryCache { return concolic.NewSummaryCache() }

// NewObserver returns an Observer collecting metrics, with tracing disabled
// (set .Trace = NewTracer(w) to stream events).
func NewObserver() *Observer { return obs.New() }

// NewTracer returns a tracer writing one JSON event per line to w. A nil w is
// allowed; combine with Keep() to retain events in memory for Chrome export.
func NewTracer(w io.Writer) *Tracer { return obs.NewTracer(w) }

// WriteChromeTrace renders retained trace events in Chrome trace_event JSON
// (one track per worker), loadable in Perfetto or chrome://tracing.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	return obs.WriteChromeTrace(w, events)
}

// NewFlightRecorder returns a flight recorder retaining the last capacity
// trace events (DefaultFlightRecorderSize is a good default).
func NewFlightRecorder(capacity int) *FlightRecorder { return obs.NewFlightRecorder(capacity) }

// DefaultFlightRecorderSize is the ring capacity the CLIs use.
const DefaultFlightRecorderSize = obs.DefaultFlightRecorderSize

// WriteOpenMetrics renders the observer's registry in the OpenMetrics /
// Prometheus text exposition format.
func WriteOpenMetrics(w io.Writer, o *Observer) error {
	if o == nil {
		return obs.WriteOpenMetrics(w, nil)
	}
	return obs.WriteOpenMetrics(w, o.Metrics)
}

// PhaseTable renders the observer's phase self-time attribution (search →
// fol → smt → sat/simplex/euf) as an aligned table, or "" with nothing to
// attribute.
func PhaseTable(o *Observer) string {
	if o == nil {
		return ""
	}
	return obs.PhaseTable(o.Metrics)
}

// FormatStatusLine renders a headline map as a "k=v k=v" progress line in the
// given key order (absent keys are skipped).
func FormatStatusLine(headline map[string]int64, order []string) string {
	return obshttp.FormatStatusLine(headline, order)
}

// ServeIntrospection binds addr and serves the live introspection endpoints
// over the observer in the background, returning the bound address and a
// shutdown function. info (optional) contributes headline numbers to
// /statusz.
func ServeIntrospection(addr string, o *Observer, info func() map[string]int64) (string, func(), error) {
	srv := obshttp.New(o)
	srv.Info = info
	return obshttp.Serve(addr, srv)
}

// Explore performs the directed search (DART for the concretization modes,
// higher-order test generation for ModeHigherOrder).
func Explore(eng *Engine, opts SearchOptions) *Stats { return search.Run(eng, opts) }

// Fuzz runs the blackbox random baseline.
func Fuzz(p *Program, opts FuzzOptions) *Stats { return fuzz.Run(p, opts) }

// ProveValidity attempts a constructive validity proof of POST(pc); see
// fol.Prove.
func ProveValidity(pc sym.Expr, samples *SampleStore, opts ProveOptions) (*Strategy, ProveOutcome) {
	return fol.Prove(pc, samples, opts)
}

// SaveSamples writes the engine's IOF store as JSON, so a later testing
// session can resume with every input–output pair observed so far
// (Sections 5.3 and 7).
func SaveSamples(eng *Engine, w io.Writer) error { return eng.Samples.Encode(w) }

// LoadSamples merges previously saved samples into the engine's IOF store,
// returning how many new pairs were added.
func LoadSamples(eng *Engine, r io.Reader) (int, error) {
	return sym.DecodeSamples(r, eng.Samples, eng.Pool)
}

// PostDescription renders POST(pc) in the paper's notation, e.g.
// "∀h ∃x,y: (h(42)=567) ⇒ (x - h(y) = 0)".
func PostDescription(pc sym.Expr, samples *SampleStore) string {
	return fol.PostString(pc, samples)
}

// GetWorkload returns a named workload: the paper examples ("obscure",
// "foo", "foo-bis", "bar", "pub", "eq-pair", "succ-pair", "kstep-2",
// "kstep-3", "delayed") and the Section 7 lexers ("lexer",
// "lexer-hardcoded").
func GetWorkload(name string) (*Workload, bool) { return lexapp.Get(name) }

// Workloads returns every registered workload.
func Workloads() []*Workload { return lexapp.All() }

// Experiments returns the full table/figure reproduction suite.
func Experiments() []Experiment { return eval.Experiments() }

// GetExperiment returns one experiment by ID (e.g. "E12").
func GetExperiment(id string) (Experiment, bool) { return eval.Get(id) }

// OpenCampaign opens (creating if needed) a persistent campaign directory
// bound to one workload/mode pair. Wire the campaign into a search with
// SearchOptions.OnRun = c.RecordRun and CheckpointOptions.Sink =
// c.SaveCheckpoint, and call c.Commit when the session ends.
func OpenCampaign(dir, workload, mode string, o *Observer) (*Campaign, error) {
	return campaign.Open(dir, workload, mode, o)
}

// ScheduleSeeds ranks corpus entries for seeding a fresh session (bugs first,
// then cheaper precision rung, more coverage, earlier discovery).
func ScheduleSeeds(entries []*CorpusEntry) []*CorpusEntry { return campaign.Schedule(entries) }

// CampaignLock is an exclusive advisory lock on a campaign directory; see
// AcquireCampaignLock.
type CampaignLock = campaign.Lock

// AcquireCampaignLock takes the single-writer session lock for a campaign
// directory, breaking a stale lock left by a crashed (kill -9) session.
// A lock held by a live process is an error naming its pid. Release it when
// the session ends.
func AcquireCampaignLock(dir string) (*CampaignLock, error) { return campaign.AcquireLock(dir) }

// FleetCoordinator owns a canonical search whose compute batches — test
// executions, validity proofs, satisfiability checks — are served by a fleet
// of worker processes over HTTP. Canonical stats are bit-identical at any
// fleet size; see internal/fleet and DESIGN.md §13.
type FleetCoordinator = fleet.Coordinator

// FleetCoordinatorOptions configures a FleetCoordinator.
type FleetCoordinatorOptions = fleet.CoordinatorOptions

// FleetWorkerOptions configures one fleet worker process.
type FleetWorkerOptions = fleet.WorkerOptions

// NewFleetCoordinator builds a fleet coordinator over the canonical engine.
// Serve its endpoints with ServeFleet and run the search with its Run method.
func NewFleetCoordinator(eng *Engine, opts FleetCoordinatorOptions) *FleetCoordinator {
	return fleet.NewCoordinator(eng, opts)
}

// RunFleetWorker joins the fleet at the coordinator URL and serves compute
// tasks until retired (nil) or the coordinator becomes unreachable (error).
// It is the entire lifecycle of a worker process.
func RunFleetWorker(opts FleetWorkerOptions) error { return fleet.RunWorker(opts) }

// MergeInfo composes several /statusz headline sources into one (later
// sources win on key collisions, nil sources are skipped).
func MergeInfo(sources ...func() map[string]int64) func() map[string]int64 {
	return obshttp.MergeInfo(sources...)
}

// ServeFleet binds addr and serves the fleet protocol endpoints (/fleet/*)
// alongside the live introspection surface (/statusz, /metrics, /events,
// /debug/pprof) on one port, returning the bound address and a shutdown
// function. info (optional) contributes headline numbers to /statusz —
// typically MergeInfo of the search headline and coordinator.Info.
func ServeFleet(addr string, c *FleetCoordinator, o *Observer, info func() map[string]int64) (string, func(), error) {
	srv := obshttp.New(o)
	srv.Info = info
	srv.Mounts = map[string]http.Handler{"/fleet/": c.Handler()}
	return obshttp.Serve(addr, srv)
}

// WriteFileAtomic writes data to path via a same-directory temp file and an
// atomic rename, so readers never observe partial content.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return campaign.WriteFileAtomic(path, data, perm)
}

// CampaignServer is the multi-tenant campaign service: bounded concurrent
// sessions with admission control, per-session isolation, a server-wide
// retention budget with LRU eviction, and drain-and-resume via the campaign
// checkpoint machinery. See internal/serve and DESIGN.md §14.
type CampaignServer = serve.Server

// CampaignServerOptions configures a CampaignServer.
type CampaignServerOptions = serve.Options

// CampaignSpec is one campaign submission to a CampaignServer.
type CampaignSpec = serve.Spec

// CampaignSession is one isolated campaign running inside a CampaignServer.
type CampaignSession = serve.Session

// CampaignResult is the retained outcome of a finished server session.
type CampaignResult = serve.Result

// NewCampaignServer opens (creating if needed) the data directory, recovers
// sessions from a previous process, and returns a server ready to admit
// submissions.
func NewCampaignServer(opts CampaignServerOptions) (*CampaignServer, error) {
	return serve.New(opts)
}

// ServeCampaigns binds addr and serves the campaign API (/api/v1/campaigns)
// alongside the live introspection surface — /statusz includes a per-session
// row backed by each session's own registry — returning the bound address
// and a shutdown function. Shutting down the HTTP listener does not drain
// the server; call srv.Drain (or Close) for that.
func ServeCampaigns(addr string, srv *CampaignServer, o *Observer) (string, func(), error) {
	s := obshttp.New(o)
	s.Info = srv.Info
	s.Sessions = srv.SessionStatuses
	s.Mounts = map[string]http.Handler{"/api/": srv.Handler()}
	return obshttp.Serve(addr, s)
}
