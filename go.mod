module hotg

go 1.22
