// Benchmarks: one per reproduced table/figure (see DESIGN.md §4 and
// EXPERIMENTS.md), each running the corresponding experiment at a CI-sized
// budget and reporting its headline metrics, plus micro-benchmarks for the
// substrates (interpreter, concolic engine, SMT solver, validity prover).
//
// Regenerate the full-size tables with:  go run ./cmd/benchtab
package hotg_test

import (
	"math/rand"
	"testing"

	"hotg"
	"hotg/internal/concolic"
	"hotg/internal/fol"
	"hotg/internal/lexapp"
	"hotg/internal/mini"
	"hotg/internal/search"
	"hotg/internal/smt"
	"hotg/internal/sym"
)

func benchConfig() hotg.ExperimentConfig {
	return hotg.ExperimentConfig{Quick: true, Budget: 150, Seed: 1}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := hotg.GetExperiment(id)
	if !ok {
		b.Fatalf("no experiment %s", id)
	}
	var failed int
	for i := 0; i < b.N; i++ {
		tab := e.Run(benchConfig())
		failed = len(tab.Failed())
	}
	if failed > 0 {
		b.Fatalf("%s: %d claim(s) failed", id, failed)
	}
}

// One benchmark per table/figure of EXPERIMENTS.md.

func BenchmarkE1Obscure(b *testing.B)            { runExperiment(b, "E1") }
func BenchmarkE2UnsoundDivergence(b *testing.B)  { runExperiment(b, "E2") }
func BenchmarkE4GoodDivergence(b *testing.B)     { runExperiment(b, "E4") }
func BenchmarkE5Incomparable(b *testing.B)       { runExperiment(b, "E5") }
func BenchmarkE6SamplesNeeded(b *testing.B)      { runExperiment(b, "E6") }
func BenchmarkE7EUFEquality(b *testing.B)        { runExperiment(b, "E7") }
func BenchmarkE8SamplePairs(b *testing.B)        { runExperiment(b, "E8") }
func BenchmarkE9MultiStep(b *testing.B)          { runExperiment(b, "E9") }
func BenchmarkE10Soundness(b *testing.B)         { runExperiment(b, "E10") }
func BenchmarkE11Simulation(b *testing.B)        { runExperiment(b, "E11") }
func BenchmarkE12LexerStudy(b *testing.B)        { runExperiment(b, "E12") }
func BenchmarkE13SamplePersistence(b *testing.B) { runExperiment(b, "E13") }
func BenchmarkE14PacketParser(b *testing.B)      { runExperiment(b, "E14") }
func BenchmarkE15GrammarBaseline(b *testing.B)   { runExperiment(b, "E15") }
func BenchmarkE16Callbacks(b *testing.B)         { runExperiment(b, "E16") }
func BenchmarkE17Verification(b *testing.B)      { runExperiment(b, "E17") }
func BenchmarkA1DelayedConc(b *testing.B)        { runExperiment(b, "A1") }
func BenchmarkA2DivergenceRates(b *testing.B)    { runExperiment(b, "A2") }
func BenchmarkA3Summaries(b *testing.B)          { runExperiment(b, "A3") }

// BenchmarkScannerInlining vs BenchmarkScannerSummaries: the raw engine cost
// of one call-heavy execution without and with the summary cache warm.
func BenchmarkScannerInlining(b *testing.B) {
	w := lexapp.Scanner()
	eng := concolic.New(w.Build(), concolic.ModeHigherOrder)
	in := w.Seeds[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Run(in)
	}
}

func BenchmarkScannerSummaries(b *testing.B) {
	w := lexapp.Scanner()
	eng := concolic.New(w.Build(), concolic.ModeHigherOrder)
	eng.Summaries = concolic.NewSummaryCache()
	eng.Run(w.Seeds[0]) // warm the cache
	in := w.Seeds[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Run(in)
	}
}

// Micro-benchmarks for the substrates.

// BenchmarkMiniInterpLexer measures the reference interpreter on one lexer
// execution.
func BenchmarkMiniInterpLexer(b *testing.B) {
	w := lexapp.Lexer()
	p := w.Build()
	in := lexapp.EncodeInput("while 1 do end")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := mini.Run(p, in, mini.RunOptions{})
		if res.Kind != mini.StopError {
			b.Fatal("unexpected result")
		}
	}
}

// BenchmarkVMLexer measures the optimized bytecode VM on the same execution
// as BenchmarkMiniInterpLexer.
func BenchmarkVMLexer(b *testing.B) {
	w := lexapp.Lexer()
	c := mini.CompileVM(w.Build()).Optimize()
	in := lexapp.EncodeInput("while 1 do end")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := mini.RunVM(c, in, mini.RunOptions{})
		if res.Kind != mini.StopError {
			b.Fatal("unexpected result")
		}
	}
}

// BenchmarkConcolicRunLexer measures one higher-order concolic execution of
// the lexer (concrete + symbolic + sampling).
func BenchmarkConcolicRunLexer(b *testing.B) {
	w := lexapp.Lexer()
	eng := concolic.New(w.Build(), concolic.ModeHigherOrder)
	in := lexapp.JunkSeed()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := eng.Run(in)
		if len(ex.PC) == 0 {
			b.Fatal("empty pc")
		}
	}
}

// BenchmarkSMTConjunction measures the solver on a typical sliced alternate
// path constraint (a dozen linear constraints over byte variables).
func BenchmarkSMTConjunction(b *testing.B) {
	var p sym.Pool
	vars := make([]*sym.Var, 8)
	bounds := map[int]smt.Bound{}
	for i := range vars {
		vars[i] = p.NewVar("b")
		bounds[vars[i].ID] = smt.Bound{Lo: 0, Hi: 127, HasLo: true, HasHi: true}
	}
	parts := []sym.Expr{}
	for i, v := range vars {
		parts = append(parts, sym.Ne(sym.VarTerm(v), sym.Int(32)))
		parts = append(parts, sym.Ge(sym.VarTerm(v), sym.Int(int64(i))))
	}
	parts = append(parts, sym.Eq(
		sym.AddSum(sym.VarTerm(vars[0]), sym.VarTerm(vars[7])), sym.Int(150)))
	f := sym.AndExpr(parts...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, _ := smt.Solve(f, smt.Options{VarBounds: bounds})
		if st != smt.StatusSat {
			b.Fatal(st)
		}
	}
}

// BenchmarkSMTUFLIA measures the solver with Ackermann-reduced uninterpreted
// functions (congruence reasoning).
func BenchmarkSMTUFLIA(b *testing.B) {
	var p sym.Pool
	x, y, z := p.NewVar("x"), p.NewVar("y"), p.NewVar("z")
	h := p.FuncSym("h", 1)
	f := sym.AndExpr(
		sym.Eq(sym.VarTerm(x), sym.VarTerm(y)),
		sym.Eq(sym.ApplyTerm(h, sym.VarTerm(y)), sym.VarTerm(z)),
		sym.Ne(sym.ApplyTerm(h, sym.VarTerm(x)), sym.AddSum(sym.VarTerm(z), sym.Int(1))),
		sym.Le(sym.VarTerm(z), sym.Int(100)),
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, _ := smt.Solve(f, smt.Options{Pool: &p})
		if st != smt.StatusSat {
			b.Fatal(st)
		}
	}
}

// BenchmarkProverHashInversion measures the validity prover on the Section 7
// core move: inverting a keyword hash through its samples.
func BenchmarkProverHashInversion(b *testing.B) {
	var p sym.Pool
	vars := make([]*sym.Sum, lexapp.ChunkLen)
	for i := range vars {
		vars[i] = sym.VarTerm(p.NewVar("c"))
	}
	h := p.FuncSym("hashstr", lexapp.ChunkLen)
	samples := sym.NewSampleStore()
	for _, kw := range lexapp.Keywords {
		args := make([]int64, lexapp.ChunkLen)
		copy(args, lexapp.EncodeInput(kw.Word)[:lexapp.ChunkLen])
		samples.Add(h, args, lexapp.KeywordHash(kw.Word))
	}
	pc := sym.Eq(sym.ApplyTerm(h, vars...), sym.Int(lexapp.KeywordHash("while")))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, out := fol.Prove(pc, samples, fol.Options{Pool: &p, NoRefute: true})
		if out != fol.OutcomeProved {
			b.Fatal(out)
		}
	}
}

// BenchmarkSearchFoo measures a complete two-step higher-order search on the
// paper's foo example.
func BenchmarkSearchFoo(b *testing.B) {
	w := lexapp.Foo()
	for i := 0; i < b.N; i++ {
		eng := concolic.New(w.Build(), concolic.ModeHigherOrder)
		st := search.Run(eng, search.Options{MaxRuns: 20, Seeds: w.Seeds})
		if len(st.ErrorSitesFound()) != 1 {
			b.Fatal("bug not found")
		}
	}
}

// BenchmarkSearchParallel compares wall-clock time of the E12 lexer search
// at different worker counts. The search trajectory is bit-identical across
// the variants (see TestSearchDeterministicAcrossWorkers); only elapsed time
// differs. On a multi-core machine the 4-worker variant should be ≥2× faster
// than the 1-worker one, since per-target validity proofs dominate and fan
// out. On a single-core runner all variants degrade to sequential speed.
func benchSearchParallel(b *testing.B, workers int) {
	w := lexapp.Lexer()
	prog := w.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := concolic.New(prog, concolic.ModeHigherOrder)
		st := search.Run(eng, search.Options{
			MaxRuns: 150, Seeds: w.Seeds, Bounds: w.Bounds, Workers: workers,
		})
		if st.Runs == 0 || st.ProverCalls == 0 {
			b.Fatal("search did no proving work")
		}
	}
}

func BenchmarkSearchParallel1(b *testing.B) { benchSearchParallel(b, 1) }
func BenchmarkSearchParallel4(b *testing.B) { benchSearchParallel(b, 4) }
func BenchmarkSearchParallel8(b *testing.B) { benchSearchParallel(b, 8) }

// BenchmarkFuzzLexer measures the blackbox baseline for comparison.
func BenchmarkFuzzLexer(b *testing.B) {
	w := lexapp.Lexer()
	p := w.Build()
	r := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hotg.Fuzz(p, hotg.FuzzOptions{MaxRuns: 50, Seeds: w.Seeds, Bounds: w.Bounds, Rand: r})
	}
}
